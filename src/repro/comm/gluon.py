"""The Gluon-style proxy-synchronization substrate (Dathathri et al., PLDI'18).

Synchronization of a label field is a **reduce** (mirror proxies send their
locally-written values to the master, which combines them with an
app-declared operator) followed by a **broadcast** (the master sends the
canonical value back to the mirrors that will read it).  Three optimizations
from the paper are modeled faithfully, each independently switchable for
ablation:

* **structural-invariant filtering** (Section III-D1): apps declare where a
  field is read and written (source or destination of an edge); proxies that
  cannot read (write) the field are excluded from broadcast (reduce) *at
  plan-construction time*.  Under OEC mirrors have no out-edges, so a
  source-read field needs no broadcast; under IEC mirrors have no in-edges,
  so a destination-write field needs no reduce; under CVC the surviving
  partners collapse to the grid row/column.
* **update-driven communication** (UO, Section III-D2): per-proxy dirty bits
  restrict each message to values actually written since the last sync, at
  the cost of a device-side extraction scan (priced by the cost model).
  The alternative (AS) ships every shared value every round, as Lux does.
* **address memoization** (footnote 1): both sides agree on a fixed
  exchange order at partition time, so messages carry no global IDs; with
  memoization off, every element ships an 8-byte ID (Lux's wire format).

Extraction is the per-round hot path, so it is fully vectorized: each
sender's outgoing plans for a field are flattened into one contiguous
index table at plan-build time, the dirty-bit filter is a single NumPy
gather over that table, and per-partner messages are sliced out of bulk
gathers (see ``_SendTable``).  Plans and tables depend only on the
partitioned graph, the field's read/write locations, and the filtering
flag, so they are memoized on the :class:`PartitionedGraph` and shared by
every engine/run over the same partitions.  The pre-vectorization
per-element reference implementation is kept as :meth:`_extract_scalar`
and exercised by the differential equivalence suite
(``tests/test_comm_vectorized_equiv.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.comm.bitset import Bitset
from repro.comm.buffers import Message, MessageHeader
from repro.errors import CommunicationError, ConfigurationError
from repro.partition.base import PartitionedGraph

__all__ = ["FieldSpec", "CommConfig", "GluonComm"]

_REDUCERS: dict[str, Callable] = {
    "min": np.minimum,
    "max": np.maximum,
    "add": np.add,
}


@dataclass(frozen=True)
class FieldSpec:
    """Synchronization contract for one label field.

    Attributes
    ----------
    name:
        field identifier.
    dtype:
        NumPy dtype of the label (determines wire width).
    reduce_op:
        ``min`` / ``max`` / ``add`` — how concurrent writes combine.
    read_at:
        where the operator *reads* the field relative to an edge:
        ``src`` (push reads the source's label; pull reads in-neighbors,
        which are sources of the reversed... i.e. still the proxies with
        local out-edges), ``dst``, ``any``, or ``none`` (never read
        remotely -> broadcast eliminated).
    write_at:
        where the operator *writes*: ``src``, ``dst``, ``any``, or
        ``master`` (only the master computes it -> reduce eliminated).
    identity:
        the neutral element; accumulator fields (``add``) are reset to it
        after their value is extracted for reduction.
    reset_after_reduce:
        accumulator semantics (pagerank residuals, kcore decrements).
    """

    name: str
    dtype: object
    reduce_op: str = "min"
    read_at: str = "src"
    write_at: str = "dst"
    identity: float = 0
    reset_after_reduce: bool = False

    def __post_init__(self):
        if self.reduce_op not in _REDUCERS:
            raise ConfigurationError(f"unknown reduce op {self.reduce_op!r}")
        if self.read_at not in ("src", "dst", "any", "none"):
            raise ConfigurationError(f"bad read_at {self.read_at!r}")
        if self.write_at not in ("src", "dst", "any", "master"):
            raise ConfigurationError(f"bad write_at {self.write_at!r}")


@dataclass(frozen=True)
class CommConfig:
    """Which communication optimizations are active.

    ``update_only=True, memoize_addresses=True`` is D-IrGL's default (UO);
    ``update_only=False`` is the AS variant; Lux is
    ``CommConfig(update_only=False, memoize_addresses=False)``.
    ``invariant_filtering`` exists for ablation (always on in D-IrGL).
    ``hierarchical`` opts into two-level sync (:mod:`repro.comm.hier`):
    same-host mirror updates ship as one inter-host message per (host,
    field, step) and are scattered on the receiving host; labels stay
    bit-identical to flat sync, only network-leg pricing and wire message
    counts change.
    """

    update_only: bool = True
    memoize_addresses: bool = True
    invariant_filtering: bool = True
    hierarchical: bool = False


@dataclass
class _PairPlan:
    """Aligned send/recv index lists for one (sender, receiver) pair."""

    send_idx: np.ndarray  # local ids on the sender
    recv_idx: np.ndarray  # local ids on the receiver, aligned element-wise


@dataclass
class _SendTable:
    """One sender's outgoing plans for a field, flattened for bulk ops.

    ``flat_send`` is the concatenation of every partner's ``send_idx``;
    ``offsets[k]:offsets[k+1]`` delimits partner ``k``'s segment.  A UO
    extraction gathers the dirty bits for the whole table at once instead
    of once per partner, and slices per-partner payloads out of a single
    bulk value gather.  Segments are never empty (empty plans are dropped
    at build time), which keeps the segmentation math free of zero-length
    fancy-index edge cases.
    """

    receivers: list[int]  # partner pid per segment, in plan order
    plans: list[_PairPlan]  # aligned with receivers
    flat_send: np.ndarray  # concat of every plan.send_idx
    offsets: np.ndarray  # int64, len(receivers) + 1

    @property
    def num_segments(self) -> int:
        return len(self.receivers)


def _build_send_tables(
    plans: dict[tuple[int, int], _PairPlan], num_partitions: int
) -> list[_SendTable | None]:
    """Group a plan dict by sender into flat extraction tables."""
    grouped: list[tuple[list[int], list[_PairPlan]]] = [
        ([], []) for _ in range(num_partitions)
    ]
    for (s, d), plan in plans.items():
        grouped[s][0].append(d)
        grouped[s][1].append(plan)
    tables: list[_SendTable | None] = []
    for receivers, pair_plans in grouped:
        if not receivers:
            tables.append(None)
            continue
        lens = np.asarray([len(p.send_idx) for p in pair_plans], dtype=np.int64)
        offsets = np.zeros(len(lens) + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        tables.append(
            _SendTable(
                receivers=receivers,
                plans=pair_plans,
                flat_send=np.concatenate([p.send_idx for p in pair_plans]),
                offsets=offsets,
            )
        )
    return tables


class GluonComm:
    """Synchronization engine for one partitioned graph and field set."""

    def __init__(
        self,
        pg: PartitionedGraph,
        fields: list[FieldSpec],
        config: CommConfig = CommConfig(),
        tracer=None,
        check=None,
    ):
        """``check`` selects the invariant-checking level (see
        :mod:`repro.check`): ``None`` reads the ambient level, ``"off"`` /
        ``"cheap"`` / ``"full"`` (or :class:`~repro.check.CheckLevel`)
        force one.  CHEAP validates plan/table structure once at
        construction; FULL additionally runs every extraction through the
        scalar reference path differentially."""
        from repro.check.level import CheckLevel, resolve_check_level

        self.pg = pg
        self.config = config
        #: normalized like the engines': ``None`` unless enabled, so the
        #: extraction wrappers pay one ``is not None`` test per call.
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        self.check_level = resolve_check_level(check)
        #: hot-path flag: route every extraction through the differential
        #: vectorized-vs-scalar comparison.
        self._check_full = self.check_level >= CheckLevel.FULL
        self.fields = {f.name: f for f in fields}
        if len(self.fields) != len(fields):
            raise ConfigurationError("duplicate field names")
        #: when True, extraction runs the pre-vectorization per-element
        #: reference path — kept for differential testing and for the
        #: regression bench's scalar-vs-vectorized speedup measurement.
        self.use_scalar_extraction = False
        # updated[field][p] — dirty bits over partition p's local proxies
        self.updated: dict[str, list[Bitset]] = {
            f.name: [Bitset(p.num_local) for p in pg.parts] for f in fields
        }
        # plans[field] -> (reduce_plans, broadcast_plans); each maps
        # (sender, receiver) -> _PairPlan.  tables[field] -> per-sender
        # flat extraction tables for (reduce, broadcast).
        self._plans: dict[str, tuple[dict, dict]] = {}
        self._tables: dict[str, tuple[list, list]] = {}
        for f in fields:
            plans, tables = self._plans_for(f)
            self._plans[f.name] = plans
            self._tables[f.name] = tables
        if self.check_level:
            from repro.check.comm import check_comm_structure

            check_comm_structure(self)

    # ------------------------------------------------------------------ #
    # plan construction
    # ------------------------------------------------------------------ #
    def _plans_for(self, spec: FieldSpec):
        """Build (or fetch memoized) plans + tables for one field.

        Plans depend only on the partitioned graph, the field's
        read/write locations, and the filtering flag — not on the field
        name, dtype, or reduce op — so they are cached on the
        :class:`PartitionedGraph` and shared across fields, engines, and
        rounds (the cross-round sync-plan memoization).
        """
        cache = self.pg.__dict__.setdefault("_gluon_plan_cache", {})
        key = (spec.read_at, spec.write_at, self.config.invariant_filtering)
        hit = cache.get(key)
        if hit is None:
            plans = self._build_plans(spec)
            tables = (
                _build_send_tables(plans[0], self.pg.num_partitions),
                _build_send_tables(plans[1], self.pg.num_partitions),
            )
            hit = cache[key] = (plans, tables)
        return hit

    def _proxy_filter(self, part, location: str) -> np.ndarray:
        """Which local proxies can read/write a field at ``location``."""
        if location == "src":
            return part.has_out_edges()
        if location == "dst":
            return part.has_in_edges()
        return np.ones(part.num_local, dtype=bool)  # "any"

    def _build_plans(self, spec: FieldSpec):
        reduce_plans: dict[tuple[int, int], _PairPlan] = {}
        broadcast_plans: dict[tuple[int, int], _PairPlan] = {}
        filtering = self.config.invariant_filtering

        if spec.write_at != "master":
            for r in self.pg.parts:  # r = mirror side (reduce sender)
                writable = (
                    self._proxy_filter(r, spec.write_at) if filtering else None
                )
                for m, send_idx in r.mirror_exchange.items():
                    recv_idx = self.pg.parts[m].master_exchange[r.pid]
                    if writable is not None:
                        mask = writable[send_idx]
                        if not mask.any():
                            continue
                        send_idx = send_idx[mask]
                        recv_idx = recv_idx[mask]
                    if len(send_idx) == 0:
                        continue  # degenerate exchange list: no plan
                    reduce_plans[(r.pid, m)] = _PairPlan(send_idx, recv_idx)

        if spec.read_at != "none":
            for r in self.pg.parts:  # r = mirror side (broadcast receiver)
                readable = (
                    self._proxy_filter(r, spec.read_at) if filtering else None
                )
                for m, recv_idx in r.mirror_exchange.items():
                    send_idx = self.pg.parts[m].master_exchange[r.pid]
                    if readable is not None:
                        mask = readable[recv_idx]
                        if not mask.any():
                            continue
                        send_idx = send_idx[mask]
                        recv_idx = recv_idx[mask]
                    if len(send_idx) == 0:
                        continue
                    broadcast_plans[(m, r.pid)] = _PairPlan(send_idx, recv_idx)

        return reduce_plans, broadcast_plans

    # ------------------------------------------------------------------ #
    # introspection (used by tests, stats, and the study's analysis)
    # ------------------------------------------------------------------ #
    def reduce_partners(self, field: str, pid: int) -> list[int]:
        """Partitions ``pid`` sends reduce messages to."""
        return sorted(m for (r, m) in self._plans[field][0] if r == pid)

    def broadcast_partners(self, field: str, pid: int) -> list[int]:
        """Partitions ``pid`` sends broadcast messages to."""
        return sorted(r for (m, r) in self._plans[field][1] if m == pid)

    def mark_updated(self, field: str, pid: int, local_ids) -> None:
        """Engine hook: record that the operator wrote these proxies."""
        self.updated[field][pid].set(local_ids)

    def pending_sends(self, field: str, phase: str, pid: int) -> bool:
        """Was any proxy in ``pid``'s outgoing exchange for this phase
        written since its last send?  (One bulk gather over the flat
        table; dirty bits on proxies outside every exchange list do not
        count — they can never produce a message.)"""
        table = self._tables[field][0 if phase == "reduce" else 1][pid]
        if table is None:
            return False
        return bool(self.updated[field][pid].bits[table.flat_send].any())

    # ------------------------------------------------------------------ #
    # extraction (vectorized hot path)
    # ------------------------------------------------------------------ #
    def _extract(self, field: str, phase: str, pid: int, labels) -> list[Message]:
        """Build partition ``pid``'s outgoing messages for one phase.

        Dispatches to the vectorized hot path, the scalar reference, or —
        at FULL check level — the differential comparison of the two
        (which returns the vectorized result after verifying equivalence).
        """
        if self.use_scalar_extraction:
            return self._extract_scalar(field, phase, pid, labels)
        if self._check_full:
            from repro.check.comm import differential_extract

            return differential_extract(self, field, phase, pid, labels)
        return self._extract_vectorized(field, phase, pid, labels)

    def _extract_vectorized(
        self, field: str, phase: str, pid: int, labels
    ) -> list[Message]:
        """Vectorized extraction (the production path).

        Under UO only dirty elements ship (dirty bits for sent proxies are
        cleared; reduce-phase accumulators are reset to identity).  Under
        AS the full invariant-filtered exchange ships.
        """
        spec = self.fields[field]
        table = self._tables[field][0 if phase == "reduce" else 1][pid]
        if table is None:
            return []
        cfg = self.config
        part = self.pg.parts[pid]
        lab = labels[pid]
        memoized = cfg.memoize_addresses
        out: list[Message] = []

        if not cfg.update_only:
            # AS: every plan ships in full — one bulk gather, sliced per
            # partner along the precomputed offsets.
            vals = lab[table.flat_send]
            ids = None if memoized else part.local_to_global[table.flat_send]
            offs = table.offsets
            for k, dst in enumerate(table.receivers):
                lo, hi = offs[k], offs[k + 1]
                out.append(
                    Message(
                        header=MessageHeader(pid, dst, phase, field),
                        values=vals[lo:hi],
                        positions=None,
                        exchange_len=len(table.plans[k].send_idx),
                        explicit_ids=(
                            ids[lo:hi] if ids is not None else None
                        ),
                        scanned_elements=0,
                    )
                )
            # Everything shipped counts as sent: dirty bits drop and
            # accumulators reset exactly as under UO.
            self.updated[field][pid].clear(table.flat_send)
            if phase == "reduce" and spec.reset_after_reduce:
                lab[table.flat_send] = spec.identity
            return out

        # UO: one dirty-bit gather over the whole flat table, then
        # segment the hits back into per-partner messages.
        dirty = self.updated[field][pid]
        flat_mask = dirty.bits[table.flat_send]
        hits = np.flatnonzero(flat_mask)
        if len(hits) == 0:
            return out
        seg_of = np.searchsorted(table.offsets, hits, side="right") - 1
        rel = hits - table.offsets[seg_of]  # positions within each plan
        counts = np.bincount(seg_of, minlength=table.num_segments)
        bounds = np.zeros(table.num_segments + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        flat_sel = table.flat_send[hits]
        flat_vals = lab[flat_sel]
        flat_ids = None if memoized else part.local_to_global[flat_sel]
        for k, dst in enumerate(table.receivers):
            lo, hi = bounds[k], bounds[k + 1]
            if lo == hi:
                # zero dirty proxies for this partner: no message, and the
                # partner's dirty bits (there are none) stay untouched.
                continue
            out.append(
                Message(
                    header=MessageHeader(pid, dst, phase, field),
                    values=flat_vals[lo:hi],
                    positions=rel[lo:hi],
                    exchange_len=len(table.plans[k].send_idx),
                    explicit_ids=(
                        flat_ids[lo:hi] if flat_ids is not None else None
                    ),
                    scanned_elements=len(table.plans[k].send_idx),
                )
            )
        # Clear only the proxies actually sent; a sender serving several
        # partners (broadcast along a CVC grid row) clears once, after
        # every partner's payload was gathered.
        dirty.clear(flat_sel)
        if phase == "reduce" and spec.reset_after_reduce:
            lab[flat_sel] = spec.identity
        return out

    # ------------------------------------------------------------------ #
    # extraction (pre-vectorization scalar reference)
    # ------------------------------------------------------------------ #
    def _extract_scalar(
        self, field: str, phase: str, pid: int, labels
    ) -> list[Message]:
        """Per-element reference implementation of :meth:`_extract`.

        Semantically identical to the vectorized path, one proxy at a
        time — the oracle for the differential equivalence suite and the
        "before" leg of the regression bench's speedup measurement.
        """
        spec = self.fields[field]
        plans = self._plans[field][0 if phase == "reduce" else 1]
        cfg = self.config
        part = self.pg.parts[pid]
        lab = labels[pid]
        dirty = self.updated[field][pid]
        out: list[Message] = []
        sent_union: list[int] = []

        for (s, d), plan in plans.items():
            if s != pid:
                continue
            send_idx = plan.send_idx
            if cfg.update_only:
                positions_l: list[int] = []
                sel_l: list[int] = []
                for i in range(len(send_idx)):
                    if dirty.bits[send_idx[i]]:
                        positions_l.append(i)
                        sel_l.append(int(send_idx[i]))
                if not sel_l:
                    continue
                positions = np.asarray(positions_l, dtype=np.int64)
                sel = np.asarray(sel_l, dtype=send_idx.dtype)
                scanned = len(send_idx)
            else:
                positions = None
                sel = send_idx
                scanned = 0
            vals = np.asarray([lab[i] for i in sel], dtype=lab.dtype)
            out.append(
                Message(
                    header=MessageHeader(pid, d, phase, field),
                    values=vals,
                    positions=positions,
                    exchange_len=len(send_idx),
                    explicit_ids=(
                        np.asarray(
                            [part.local_to_global[i] for i in sel],
                            dtype=part.local_to_global.dtype,
                        )
                        if not cfg.memoize_addresses
                        else None
                    ),
                    scanned_elements=scanned,
                )
            )
            sent_union.extend(int(i) for i in sel)

        for i in sent_union:
            dirty.bits[i] = False
        if phase == "reduce" and spec.reset_after_reduce:
            for i in sent_union:
                lab[i] = spec.identity
        return out

    # ------------------------------------------------------------------ #
    # reduce
    # ------------------------------------------------------------------ #
    def _record(self, field: str, phase: str, msgs: list[Message]) -> None:
        """Count per-field/per-phase messages and wire bytes."""
        if not msgs:
            return
        tracer = self.tracer
        tracer.count(f"comm.{phase}.{field}.messages", len(msgs))
        tracer.count(
            f"comm.{phase}.{field}.bytes",
            sum(m.wire_bytes() for m in msgs),
        )

    def make_reduce_messages(
        self, field: str, pid: int, labels: list[np.ndarray]
    ) -> list[Message]:
        """Extract this partition's reduce messages (mirror -> master)."""
        msgs = self._extract(field, "reduce", pid, labels)
        if self.tracer is not None:
            self._record(field, "reduce", msgs)
        return msgs

    def apply_reduce(
        self, msg: Message, labels: list[np.ndarray]
    ) -> np.ndarray:
        """Combine a reduce message into the master's values.

        Returns the local IDs (on the receiver) whose value changed; those
        masters are marked dirty so the following broadcast propagates them,
        and the engine activates them in its worklist.
        """
        field = msg.header.field
        spec = self.fields[field]
        plan = self._plans[field][0].get((msg.header.src, msg.header.dst))
        if plan is None:
            raise CommunicationError(
                f"no reduce plan {msg.header.src}->{msg.header.dst} for {field}"
            )
        tgt = (
            plan.recv_idx
            if msg.positions is None
            else plan.recv_idx[msg.positions]
        )
        dst = msg.header.dst
        old = labels[dst][tgt]
        if spec.reduce_op == "add":
            new = old + msg.values
            changed_mask = msg.values != 0
        else:
            new = _REDUCERS[spec.reduce_op](old, msg.values)
            changed_mask = new != old
        labels[dst][tgt] = new
        changed = tgt[changed_mask]
        if len(changed):
            self.updated[field][dst].set(changed)
        return changed

    # ------------------------------------------------------------------ #
    # broadcast
    # ------------------------------------------------------------------ #
    def make_broadcast_messages(
        self, field: str, pid: int, labels: list[np.ndarray]
    ) -> list[Message]:
        """Extract this partition's broadcast messages (master -> mirrors)."""
        msgs = self._extract(field, "broadcast", pid, labels)
        if self.tracer is not None:
            self._record(field, "broadcast", msgs)
        return msgs

    def apply_broadcast(
        self, msg: Message, labels: list[np.ndarray]
    ) -> np.ndarray:
        """Install canonical values into mirror proxies.

        Returns receiver-local IDs whose value changed (worklist activation);
        mirrors are *not* marked dirty — a broadcast value is canonical and
        must not be reduced back.

        Min/max fields merge with their reducer instead of overwriting.
        In-order delivery this is identical (the master's value always
        dominates a mirror's), but under BASP two broadcasts of one field
        can arrive inverted (a later, heavier message can ride a longer
        simulated inter-host leg); merging keeps the mirror monotone
        instead of regressing it to the stale value.
        """
        field = msg.header.field
        spec = self.fields[field]
        plan = self._plans[field][1].get((msg.header.src, msg.header.dst))
        if plan is None:
            raise CommunicationError(
                f"no broadcast plan {msg.header.src}->{msg.header.dst} for {field}"
            )
        tgt = (
            plan.recv_idx
            if msg.positions is None
            else plan.recv_idx[msg.positions]
        )
        dst = msg.header.dst
        old = labels[dst][tgt]
        if spec.reduce_op in ("min", "max"):
            new = _REDUCERS[spec.reduce_op](old, msg.values)
        else:
            new = msg.values
        changed_mask = old != new
        labels[dst][tgt] = new
        return tgt[changed_mask]

    # ------------------------------------------------------------------ #
    # bulk-synchronous convenience
    # ------------------------------------------------------------------ #
    def bsp_sync(
        self, field: str, labels: list[np.ndarray]
    ) -> tuple[list[Message], list[np.ndarray]]:
        """One full BSP synchronization of ``field``.

        Returns every message generated (for cost accounting) and, per
        partition, the local IDs whose value changed (for worklist
        activation on the receiving side).
        """
        P = self.pg.num_partitions
        changed: list[list[np.ndarray]] = [[] for _ in range(P)]
        msgs: list[Message] = []

        for p in range(P):
            for msg in self.make_reduce_messages(field, p, labels):
                msgs.append(msg)
                ch = self.apply_reduce(msg, labels)
                if len(ch):
                    changed[msg.header.dst].append(ch)
        for p in range(P):
            for msg in self.make_broadcast_messages(field, p, labels):
                msgs.append(msg)
                ch = self.apply_broadcast(msg, labels)
                if len(ch):
                    changed[msg.header.dst].append(ch)

        merged = [
            np.unique(np.concatenate(c)) if c else np.empty(0, dtype=np.int64)
            for c in changed
        ]
        return msgs, merged
