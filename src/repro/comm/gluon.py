"""The Gluon-style proxy-synchronization substrate (Dathathri et al., PLDI'18).

Synchronization of a label field is a **reduce** (mirror proxies send their
locally-written values to the master, which combines them with an
app-declared operator) followed by a **broadcast** (the master sends the
canonical value back to the mirrors that will read it).  Three optimizations
from the paper are modeled faithfully, each independently switchable for
ablation:

* **structural-invariant filtering** (Section III-D1): apps declare where a
  field is read and written (source or destination of an edge); proxies that
  cannot read (write) the field are excluded from broadcast (reduce) *at
  plan-construction time*.  Under OEC mirrors have no out-edges, so a
  source-read field needs no broadcast; under IEC mirrors have no in-edges,
  so a destination-write field needs no reduce; under CVC the surviving
  partners collapse to the grid row/column.
* **update-driven communication** (UO, Section III-D2): per-proxy dirty bits
  restrict each message to values actually written since the last sync, at
  the cost of a device-side extraction scan (priced by the cost model).
  The alternative (AS) ships every shared value every round, as Lux does.
* **address memoization** (footnote 1): both sides agree on a fixed
  exchange order at partition time, so messages carry no global IDs; with
  memoization off, every element ships an 8-byte ID (Lux's wire format).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.comm.bitset import Bitset
from repro.comm.buffers import Message, MessageHeader
from repro.errors import CommunicationError, ConfigurationError
from repro.partition.base import PartitionedGraph

__all__ = ["FieldSpec", "CommConfig", "GluonComm"]

_REDUCERS: dict[str, Callable] = {
    "min": np.minimum,
    "max": np.maximum,
    "add": np.add,
}


@dataclass(frozen=True)
class FieldSpec:
    """Synchronization contract for one label field.

    Attributes
    ----------
    name:
        field identifier.
    dtype:
        NumPy dtype of the label (determines wire width).
    reduce_op:
        ``min`` / ``max`` / ``add`` — how concurrent writes combine.
    read_at:
        where the operator *reads* the field relative to an edge:
        ``src`` (push reads the source's label; pull reads in-neighbors,
        which are sources of the reversed... i.e. still the proxies with
        local out-edges), ``dst``, ``any``, or ``none`` (never read
        remotely -> broadcast eliminated).
    write_at:
        where the operator *writes*: ``src``, ``dst``, ``any``, or
        ``master`` (only the master computes it -> reduce eliminated).
    identity:
        the neutral element; accumulator fields (``add``) are reset to it
        after their value is extracted for reduction.
    reset_after_reduce:
        accumulator semantics (pagerank residuals, kcore decrements).
    """

    name: str
    dtype: object
    reduce_op: str = "min"
    read_at: str = "src"
    write_at: str = "dst"
    identity: float = 0
    reset_after_reduce: bool = False

    def __post_init__(self):
        if self.reduce_op not in _REDUCERS:
            raise ConfigurationError(f"unknown reduce op {self.reduce_op!r}")
        if self.read_at not in ("src", "dst", "any", "none"):
            raise ConfigurationError(f"bad read_at {self.read_at!r}")
        if self.write_at not in ("src", "dst", "any", "master"):
            raise ConfigurationError(f"bad write_at {self.write_at!r}")


@dataclass(frozen=True)
class CommConfig:
    """Which communication optimizations are active.

    ``update_only=True, memoize_addresses=True`` is D-IrGL's default (UO);
    ``update_only=False`` is the AS variant; Lux is
    ``CommConfig(update_only=False, memoize_addresses=False)``.
    ``invariant_filtering`` exists for ablation (always on in D-IrGL).
    """

    update_only: bool = True
    memoize_addresses: bool = True
    invariant_filtering: bool = True


@dataclass
class _PairPlan:
    """Aligned send/recv index lists for one (sender, receiver) pair."""

    send_idx: np.ndarray  # local ids on the sender
    recv_idx: np.ndarray  # local ids on the receiver, aligned element-wise


class GluonComm:
    """Synchronization engine for one partitioned graph and field set."""

    def __init__(
        self,
        pg: PartitionedGraph,
        fields: list[FieldSpec],
        config: CommConfig = CommConfig(),
    ):
        self.pg = pg
        self.config = config
        self.fields = {f.name: f for f in fields}
        if len(self.fields) != len(fields):
            raise ConfigurationError("duplicate field names")
        # updated[field][p] — dirty bits over partition p's local proxies
        self.updated: dict[str, list[Bitset]] = {
            f.name: [Bitset(p.num_local) for p in pg.parts] for f in fields
        }
        # plans[field] -> (reduce_plans, broadcast_plans); each maps
        # (sender, receiver) -> _PairPlan
        self._plans: dict[str, tuple[dict, dict]] = {
            f.name: self._build_plans(f) for f in fields
        }

    # ------------------------------------------------------------------ #
    # plan construction
    # ------------------------------------------------------------------ #
    def _proxy_filter(self, part, location: str) -> np.ndarray:
        """Which local proxies can read/write a field at ``location``."""
        if location == "src":
            return part.has_out_edges()
        if location == "dst":
            return part.has_in_edges()
        return np.ones(part.num_local, dtype=bool)  # "any"

    def _build_plans(self, spec: FieldSpec):
        reduce_plans: dict[tuple[int, int], _PairPlan] = {}
        broadcast_plans: dict[tuple[int, int], _PairPlan] = {}
        filtering = self.config.invariant_filtering

        if spec.write_at != "master":
            for r in self.pg.parts:  # r = mirror side (reduce sender)
                writable = (
                    self._proxy_filter(r, spec.write_at) if filtering else None
                )
                for m, send_idx in r.mirror_exchange.items():
                    recv_idx = self.pg.parts[m].master_exchange[r.pid]
                    if writable is not None:
                        mask = writable[send_idx]
                        if not mask.any():
                            continue
                        send_idx = send_idx[mask]
                        recv_idx = recv_idx[mask]
                    reduce_plans[(r.pid, m)] = _PairPlan(send_idx, recv_idx)

        if spec.read_at != "none":
            for r in self.pg.parts:  # r = mirror side (broadcast receiver)
                readable = (
                    self._proxy_filter(r, spec.read_at) if filtering else None
                )
                for m, recv_idx in r.mirror_exchange.items():
                    send_idx = self.pg.parts[m].master_exchange[r.pid]
                    if readable is not None:
                        mask = readable[recv_idx]
                        if not mask.any():
                            continue
                        send_idx = send_idx[mask]
                        recv_idx = recv_idx[mask]
                    broadcast_plans[(m, r.pid)] = _PairPlan(send_idx, recv_idx)

        return reduce_plans, broadcast_plans

    # ------------------------------------------------------------------ #
    # introspection (used by tests, stats, and the study's analysis)
    # ------------------------------------------------------------------ #
    def reduce_partners(self, field: str, pid: int) -> list[int]:
        """Partitions ``pid`` sends reduce messages to."""
        return sorted(m for (r, m) in self._plans[field][0] if r == pid)

    def broadcast_partners(self, field: str, pid: int) -> list[int]:
        """Partitions ``pid`` sends broadcast messages to."""
        return sorted(r for (m, r) in self._plans[field][1] if m == pid)

    def mark_updated(self, field: str, pid: int, local_ids) -> None:
        """Engine hook: record that the operator wrote these proxies."""
        self.updated[field][pid].set(local_ids)

    # ------------------------------------------------------------------ #
    # reduce
    # ------------------------------------------------------------------ #
    def make_reduce_messages(
        self, field: str, pid: int, labels: list[np.ndarray]
    ) -> list[Message]:
        """Extract this partition's reduce messages (mirror -> master).

        Under UO only dirty elements ship (dirty bits for sent mirrors are
        cleared; accumulators are reset to identity).  Under AS the full
        invariant-filtered exchange ships.
        """
        spec = self.fields[field]
        reduce_plans, _ = self._plans[field]
        cfg = self.config
        part = self.pg.parts[pid]
        dirty = self.updated[field][pid]
        out: list[Message] = []
        sent_union: list[np.ndarray] = []

        for (r, m), plan in reduce_plans.items():
            if r != pid:
                continue
            send_idx = plan.send_idx
            if cfg.update_only:
                mask = dirty.bits[send_idx]
                if not mask.any():
                    continue
                positions = np.flatnonzero(mask)
                sel = send_idx[positions]
                scanned = len(send_idx)
            else:
                positions = None
                sel = send_idx
                scanned = 0
            vals = labels[pid][sel].copy()
            out.append(
                Message(
                    header=MessageHeader(pid, m, "reduce", field),
                    values=vals,
                    positions=positions,
                    exchange_len=len(send_idx),
                    explicit_ids=(
                        part.local_to_global[sel]
                        if not cfg.memoize_addresses
                        else None
                    ),
                    scanned_elements=scanned,
                )
            )
            sent_union.append(sel)

        if sent_union:
            sent = np.concatenate(sent_union)
            dirty.clear(sent)
            if spec.reset_after_reduce:
                labels[pid][sent] = spec.identity
        return out

    def apply_reduce(
        self, msg: Message, labels: list[np.ndarray]
    ) -> np.ndarray:
        """Combine a reduce message into the master's values.

        Returns the local IDs (on the receiver) whose value changed; those
        masters are marked dirty so the following broadcast propagates them,
        and the engine activates them in its worklist.
        """
        field = msg.header.field
        spec = self.fields[field]
        plan = self._plans[field][0].get((msg.header.src, msg.header.dst))
        if plan is None:
            raise CommunicationError(
                f"no reduce plan {msg.header.src}->{msg.header.dst} for {field}"
            )
        tgt = (
            plan.recv_idx
            if msg.positions is None
            else plan.recv_idx[msg.positions]
        )
        dst = msg.header.dst
        old = labels[dst][tgt]
        if spec.reduce_op == "add":
            new = old + msg.values
            changed_mask = msg.values != 0
        else:
            new = _REDUCERS[spec.reduce_op](old, msg.values)
            changed_mask = new != old
        labels[dst][tgt] = new
        changed = tgt[changed_mask]
        if len(changed):
            self.updated[field][dst].set(changed)
        return changed

    # ------------------------------------------------------------------ #
    # broadcast
    # ------------------------------------------------------------------ #
    def make_broadcast_messages(
        self, field: str, pid: int, labels: list[np.ndarray]
    ) -> list[Message]:
        """Extract this partition's broadcast messages (master -> mirrors)."""
        spec = self.fields[field]
        _, broadcast_plans = self._plans[field]
        cfg = self.config
        part = self.pg.parts[pid]
        dirty = self.updated[field][pid]
        out: list[Message] = []
        sent_union: list[np.ndarray] = []

        for (m, r), plan in broadcast_plans.items():
            if m != pid:
                continue
            send_idx = plan.send_idx
            if cfg.update_only:
                mask = dirty.bits[send_idx]
                if not mask.any():
                    continue
                positions = np.flatnonzero(mask)
                sel = send_idx[positions]
                scanned = len(send_idx)
            else:
                positions = None
                sel = send_idx
                scanned = 0
            out.append(
                Message(
                    header=MessageHeader(pid, r, "broadcast", field),
                    values=labels[pid][sel].copy(),
                    positions=positions,
                    exchange_len=len(send_idx),
                    explicit_ids=(
                        part.local_to_global[sel]
                        if not cfg.memoize_addresses
                        else None
                    ),
                    scanned_elements=scanned,
                )
            )
            sent_union.append(sel)

        if sent_union:
            # A master broadcasting to several grid-row partners clears its
            # dirty bit only once all partners' messages are built.
            dirty.clear(np.concatenate(sent_union))
        return out

    def apply_broadcast(
        self, msg: Message, labels: list[np.ndarray]
    ) -> np.ndarray:
        """Install canonical values into mirror proxies.

        Returns receiver-local IDs whose value changed (worklist activation);
        mirrors are *not* marked dirty — a broadcast value is canonical and
        must not be reduced back.
        """
        field = msg.header.field
        plan = self._plans[field][1].get((msg.header.src, msg.header.dst))
        if plan is None:
            raise CommunicationError(
                f"no broadcast plan {msg.header.src}->{msg.header.dst} for {field}"
            )
        tgt = (
            plan.recv_idx
            if msg.positions is None
            else plan.recv_idx[msg.positions]
        )
        dst = msg.header.dst
        old = labels[dst][tgt]
        changed_mask = old != msg.values
        labels[dst][tgt] = msg.values
        return tgt[changed_mask]

    # ------------------------------------------------------------------ #
    # bulk-synchronous convenience
    # ------------------------------------------------------------------ #
    def bsp_sync(
        self, field: str, labels: list[np.ndarray]
    ) -> tuple[list[Message], list[np.ndarray]]:
        """One full BSP synchronization of ``field``.

        Returns every message generated (for cost accounting) and, per
        partition, the local IDs whose value changed (for worklist
        activation on the receiving side).
        """
        P = self.pg.num_partitions
        changed: list[list[np.ndarray]] = [[] for _ in range(P)]
        msgs: list[Message] = []

        for p in range(P):
            for msg in self.make_reduce_messages(field, p, labels):
                msgs.append(msg)
                ch = self.apply_reduce(msg, labels)
                if len(ch):
                    changed[msg.header.dst].append(ch)
        for p in range(P):
            for msg in self.make_broadcast_messages(field, p, labels):
                msgs.append(msg)
                ch = self.apply_broadcast(msg, labels)
                if len(ch):
                    changed[msg.header.dst].append(ch)

        merged = [
            np.unique(np.concatenate(c)) if c else np.empty(0, dtype=np.int64)
            for c in changed
        ]
        return msgs, merged
