"""Dense bitset used for update tracking (the "UO" optimization).

Gluon tracks which proxies were updated each round with device-side bitsets;
the wire format packs one bit per element of the memoized exchange order.
We store an unpacked boolean array for fast NumPy indexing and expose the
*packed* wire form (:meth:`to_packed` / :meth:`from_packed`, 8 bits per
byte via ``np.packbits``) for size accounting and serialization.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Bitset"]


class Bitset:
    """Fixed-size bitset over ``size`` elements."""

    __slots__ = ("bits",)

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"bitset size must be non-negative, got {size}")
        self.bits = np.zeros(size, dtype=bool)

    @property
    def size(self) -> int:
        return len(self.bits)

    def set(self, idx) -> None:
        """Set the given indices (array-like or scalar)."""
        self.bits[idx] = True

    def clear(self, idx=None) -> None:
        """Clear the given indices, or everything when ``idx`` is None."""
        if idx is None:
            self.bits[:] = False
        else:
            self.bits[idx] = False

    def test(self, idx) -> np.ndarray:
        return self.bits[idx]

    def count(self) -> int:
        return int(self.bits.sum())

    def any(self) -> bool:
        return bool(self.bits.any())

    def indices(self) -> np.ndarray:
        return np.flatnonzero(self.bits)

    # ------------------------------------------------------------------ #
    # packed wire form
    # ------------------------------------------------------------------ #
    @staticmethod
    def packed_nbytes(num_elements) -> int:
        """Wire bytes of a packed bitset over ``num_elements`` bits.

        Always a plain Python ``int`` (NumPy integers would leak into the
        JSON-serialized wire accounting), and rejects negative domains.
        """
        n = int(num_elements)
        if n < 0:
            raise ValueError(f"bit count must be non-negative, got {n}")
        return (n + 7) // 8

    def to_packed(self) -> np.ndarray:
        """The wire form: 8 bits per byte, little-endian within each byte.

        ``len(to_packed()) == packed_nbytes(size)`` — the invariant the
        wire accounting in :meth:`Message.wire_bytes` relies on.
        """
        return np.packbits(self.bits, bitorder="little")

    @classmethod
    def from_packed(cls, packed, size: int) -> "Bitset":
        """Rebuild a bitset of ``size`` elements from its packed wire form."""
        packed = np.asarray(packed, dtype=np.uint8)
        if len(packed) != cls.packed_nbytes(size):
            raise ValueError(
                f"packed form has {len(packed)} bytes; "
                f"{cls.packed_nbytes(size)} expected for {size} bits"
            )
        b = cls(size)
        if size:
            b.bits[:] = np.unpackbits(packed, count=size, bitorder="little").astype(bool)
        return b

    def __eq__(self, other) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return np.array_equal(self.bits, other.bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Bitset {self.count()}/{self.size} set>"
