"""Dense bitset used for update tracking (the "UO" optimization).

Gluon tracks which proxies were updated each round with device-side bitsets;
the wire format packs one bit per element of the memoized exchange order.
We store an unpacked boolean array for fast NumPy indexing and expose the
*packed* size for wire accounting.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Bitset"]


class Bitset:
    """Fixed-size bitset over ``size`` elements."""

    __slots__ = ("bits",)

    def __init__(self, size: int):
        self.bits = np.zeros(size, dtype=bool)

    @property
    def size(self) -> int:
        return len(self.bits)

    def set(self, idx) -> None:
        """Set the given indices (array-like or scalar)."""
        self.bits[idx] = True

    def clear(self, idx=None) -> None:
        """Clear the given indices, or everything when ``idx`` is None."""
        if idx is None:
            self.bits[:] = False
        else:
            self.bits[idx] = False

    def test(self, idx) -> np.ndarray:
        return self.bits[idx]

    def count(self) -> int:
        return int(self.bits.sum())

    def any(self) -> bool:
        return bool(self.bits.any())

    def indices(self) -> np.ndarray:
        return np.flatnonzero(self.bits)

    @staticmethod
    def packed_nbytes(num_elements: int) -> int:
        """Wire bytes of a packed bitset over ``num_elements`` bits."""
        return (num_elements + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Bitset {self.count()}/{self.size} set>"
