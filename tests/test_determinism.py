"""Golden determinism suite: two identical runs must be bit-identical.

The engines are deterministic discrete-event simulations; the vectorized
comm substrate must preserve that.  For every study app under BSP and
BASP, two runs built from scratch (fresh graphs, partitions, plan caches,
and engines) must produce identical labels, round counts, and the full
:class:`RunStats` record.  Any divergence means ordering leaked in — a
dict iteration, an unstable sort, or a float reassociation.
"""

import dataclasses

import numpy as np
import pytest

from repro.apps import get_app
from repro.comm import CommConfig
from repro.engine import BASPEngine, BSPEngine, RunContext
from repro.generators import rmat
from repro.graph.transform import add_random_weights, make_undirected
from repro.hw import bridges
from repro.partition import partition

APPS = ("bfs", "cc", "kcore", "pr", "sssp")
ENGINES = {"bsp": BSPEngine, "basp": BASPEngine}


def _one_run(app_name: str, engine: str, executor: str = "serial"):
    """Build everything from scratch and run once."""
    g = add_random_weights(rmat(9, edge_factor=8, seed=3), seed=0)
    sym = add_random_weights(make_undirected(g), seed=1)
    app = get_app(app_name)
    base = sym if app.needs_symmetric else g
    ctx = RunContext(
        num_global_vertices=base.num_vertices,
        source=int(np.argmax(base.out_degrees())),
        k=8,
        global_out_degrees=base.out_degrees(),
        global_degrees=sym.out_degrees(),
    )
    pg = partition(base, "cvc", 4, cache=False)
    eng = ENGINES[engine](
        pg, bridges(4), app,
        comm_config=CommConfig(update_only=True),
        check_memory=False,
        executor=executor,
    )
    return eng.run(ctx)


def _assert_stats_identical(a, b):
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            np.testing.assert_array_equal(va, vb, err_msg=f.name)
        else:
            assert va == vb, f"{f.name}: {va!r} != {vb!r}"


def _assert_results_identical(r1, r2):
    np.testing.assert_array_equal(r1.labels, r2.labels)
    assert r1.stats.rounds == r2.stats.rounds
    _assert_stats_identical(r1.stats, r2.stats)
    assert set(r1.extra) == set(r2.extra)
    for k in r1.extra:
        np.testing.assert_array_equal(r1.extra[k], r2.extra[k])


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("app", APPS)
def test_two_runs_identical(app, engine):
    _assert_results_identical(_one_run(app, engine), _one_run(app, engine))


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("app", APPS)
def test_threads_executor_bit_identical(app, engine):
    """The threaded compute phase must not change a single stats field:
    per-partition outputs are merged in pid order regardless of which
    thread finished first."""
    _assert_results_identical(
        _one_run(app, engine), _one_run(app, engine, executor="threads")
    )


def test_sweep_process_pool_bit_identical():
    """The same study cells through jobs=1 and a 2-worker process pool
    must agree on every deterministic outcome field."""
    from repro.runtime.cells import CellSpec, SystemSpec
    from repro.runtime.sweep import SweepExecutor

    specs = [
        CellSpec(
            key=(name, bench),
            system=SystemSpec.variant(name),
            benchmark=bench,
            dataset="tiny-s",
            num_gpus=2,
            check_memory=False,
        )
        for name in ("var1", "var4")
        for bench in ("bfs", "pr")
    ]
    with SweepExecutor(jobs=1) as ex:
        serial = ex.map(specs)
    with SweepExecutor(jobs=2) as ex:
        pooled = ex.map(specs)
    assert [o.key for o in serial] == [o.key for o in pooled]
    for a, b in zip(serial, pooled):
        assert a.ok and b.ok
        assert a.labels_crc == b.labels_crc, a.key
        assert a.stats.execution_time == b.stats.execution_time, a.key
        assert a.stats.rounds == b.stats.rounds, a.key
        assert a.stats.comm_volume_bytes == b.stats.comm_volume_bytes, a.key
