"""Golden determinism suite: two identical runs must be bit-identical.

The engines are deterministic discrete-event simulations; the vectorized
comm substrate must preserve that.  For every study app under BSP and
BASP, two runs built from scratch (fresh graphs, partitions, plan caches,
and engines) must produce identical labels, round counts, and the full
:class:`RunStats` record.  Any divergence means ordering leaked in — a
dict iteration, an unstable sort, or a float reassociation.
"""

import dataclasses

import numpy as np
import pytest

from repro.apps import get_app
from repro.comm import CommConfig
from repro.engine import BASPEngine, BSPEngine, RunContext
from repro.generators import rmat
from repro.graph.transform import add_random_weights, make_undirected
from repro.hw import bridges
from repro.partition import partition

APPS = ("bfs", "cc", "kcore", "pr", "sssp")
ENGINES = {"bsp": BSPEngine, "basp": BASPEngine}


def _one_run(app_name: str, engine: str):
    """Build everything from scratch and run once."""
    g = add_random_weights(rmat(9, edge_factor=8, seed=3), seed=0)
    sym = add_random_weights(make_undirected(g), seed=1)
    app = get_app(app_name)
    base = sym if app.needs_symmetric else g
    ctx = RunContext(
        num_global_vertices=base.num_vertices,
        source=int(np.argmax(base.out_degrees())),
        k=8,
        global_out_degrees=base.out_degrees(),
        global_degrees=sym.out_degrees(),
    )
    pg = partition(base, "cvc", 4, cache=False)
    eng = ENGINES[engine](
        pg, bridges(4), app,
        comm_config=CommConfig(update_only=True),
        check_memory=False,
    )
    return eng.run(ctx)


def _assert_stats_identical(a, b):
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            np.testing.assert_array_equal(va, vb, err_msg=f.name)
        else:
            assert va == vb, f"{f.name}: {va!r} != {vb!r}"


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("app", APPS)
def test_two_runs_identical(app, engine):
    r1 = _one_run(app, engine)
    r2 = _one_run(app, engine)
    np.testing.assert_array_equal(r1.labels, r2.labels)
    assert r1.stats.rounds == r2.stats.rounds
    _assert_stats_identical(r1.stats, r2.stats)
    assert set(r1.extra) == set(r2.extra)
    for k in r1.extra:
        np.testing.assert_array_equal(r1.extra[k], r2.extra[k])
