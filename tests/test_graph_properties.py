"""Tests for graph property measurement (Table I machinery)."""

import networkx as nx
import numpy as np

from repro.graph import from_edges, from_networkx, properties
from repro.graph.properties import approximate_diameter, bfs_levels, degree_histogram


def path(n):
    return from_edges(range(n - 1), range(1, n), num_vertices=n)


class TestBfsLevels:
    def test_path_levels(self):
        levels = bfs_levels(path(5), 0)
        assert levels.tolist() == [0, 1, 2, 3, 4]

    def test_undirected_reaches_backwards(self):
        levels = bfs_levels(path(5), 4)
        assert levels.tolist() == [4, 3, 2, 1, 0]

    def test_directed_only(self):
        levels = bfs_levels(path(3), 2, undirected=False)
        assert levels.tolist() == [-1, -1, 0]

    def test_disconnected(self):
        g = from_edges([0], [1], num_vertices=4)
        levels = bfs_levels(g, 0)
        assert levels[2] == -1 and levels[3] == -1


class TestDiameter:
    def test_path_diameter_exact(self):
        assert approximate_diameter(path(10), num_sweeps=4, seed=0) == 9

    def test_cycle_lower_bound(self):
        n = 12
        g = from_edges(range(n), [(i + 1) % n for i in range(n)], num_vertices=n)
        d = approximate_diameter(g, num_sweeps=4, seed=0)
        assert d == 6  # undirected cycle diameter n/2

    def test_star_diameter(self):
        g = from_edges([0] * 9, range(1, 10), num_vertices=10)
        assert approximate_diameter(g) == 2

    def test_empty(self):
        g = from_edges([], [], num_vertices=0)
        assert approximate_diameter(g) == 0

    def test_matches_networkx_on_random_connected(self):
        nxg = nx.connected_watts_strogatz_graph(40, 4, 0.3, seed=5)
        g = from_networkx(nxg)
        true_d = nx.diameter(nxg)
        est = approximate_diameter(g, num_sweeps=6, seed=0)
        assert est <= true_d
        assert est >= max(1, true_d - 2)  # double sweep is a tight lower bound


class TestDegreeHistogram:
    def test_out_histogram(self):
        g = from_edges([0, 0, 1], [1, 2, 2], num_vertices=3)
        h = degree_histogram(g, "out")
        assert h.tolist() == [1, 1, 1]  # one deg-0, one deg-1, one deg-2

    def test_in_histogram(self):
        g = from_edges([0, 0, 1], [1, 2, 2], num_vertices=3)
        h = degree_histogram(g, "in")
        assert h.tolist() == [1, 1, 1]

    def test_invalid_direction(self):
        import pytest

        with pytest.raises(ValueError):
            degree_histogram(path(3), "sideways")


class TestProperties:
    def test_table1_row_fields(self):
        p = properties(path(6), name="p6")
        assert p.name == "p6"
        assert p.num_vertices == 6
        assert p.num_edges == 5
        assert p.max_out_degree == 1
        assert p.max_in_degree == 1
        assert p.approx_diameter == 5

    def test_scale_factor_scales_size(self):
        small = properties(path(6), scale_factor=1.0)
        big = properties(path(6), scale_factor=1000.0)
        assert np.isclose(big.size_gb, small.size_gb * 1000.0)

    def test_row_tuple(self):
        row = properties(path(4), name="x").row()
        assert row[0] == "x"
        assert len(row) == 8
