"""Tests for the in-text analysis helpers (Section V's narrative numbers)."""

import pytest

from repro.generators import load_dataset
from repro.study.analysis import (
    async_work_inflation,
    message_size_reduction,
    replication_table,
)


@pytest.fixture(scope="module")
def uk07():
    return load_dataset("uk07-s")


class TestMessageSizeReduction:
    def test_uo_shrinks_messages(self, uk07):
        """The Section V-B3 anecdote: UO cuts the average message size."""
        r = message_size_reduction("sssp", uk07, num_gpus=32)
        # the average message shrinks (less than total volume does, since
        # UO also eliminates whole messages for update-free partners)
        assert r.reduction > 1.3
        assert r.uo_avg_bytes < r.as_avg_bytes

    def test_fields_populated(self, uk07):
        r = message_size_reduction("bfs", uk07, num_gpus=16)
        assert r.benchmark == "bfs"
        assert r.num_gpus == 16
        assert r.as_time > 0 and r.uo_time > 0


class TestAsyncInflation:
    def test_redundant_work_measured(self):
        """The Section V-B4 anecdote on the long-tail crawl."""
        uk14 = load_dataset("uk14-s")
        r = async_work_inflation("bfs", uk14, num_gpus=64)
        assert r.async_max_rounds > r.sync_rounds
        assert r.work_inflation > 1.0

    def test_round_ordering(self, uk07):
        r = async_work_inflation("sssp", uk07, num_gpus=16)
        assert r.async_min_rounds <= r.async_max_rounds


class TestReplicationTable:
    def test_structure(self, uk07):
        rows, text = replication_table(uk07, num_gpus=32)
        assert len(rows) == 4
        assert "CVC" in text
        by_policy = {r[0]: r for r in rows}
        # CVC's partner restriction shows in the structure itself
        assert by_policy["CVC"][3] < by_policy["HVC"][3]
        # every policy replicates at least 1x
        assert all(r[1] >= 1.0 for r in rows)
