"""Unit tests for application kernels and shared compute helpers."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.apps.common import expand_frontier, scatter_add, scatter_min
from repro.engine import BSPEngine, RunContext
from repro.errors import ConfigurationError
from repro.graph import from_edges
from repro.hw import bridges
from repro.partition import partition


class TestExpandFrontier:
    def g(self):
        return from_edges([0, 0, 1, 2, 2, 2], [1, 2, 2, 0, 1, 3], num_vertices=4)

    def test_all_edges_of_frontier(self):
        g = self.g()
        rep, dsts, w = expand_frontier(g, np.array([0, 2]))
        assert len(dsts) == 5  # deg(0)=2, deg(2)=3
        assert w is None
        # rep indexes into the frontier array
        srcs = np.array([0, 2])[rep]
        expected = {(0, 1), (0, 2), (2, 0), (2, 1), (2, 3)}
        assert set(zip(srcs.tolist(), dsts.tolist())) == expected

    def test_empty_frontier(self):
        rep, dsts, _ = expand_frontier(self.g(), np.empty(0, dtype=np.int64))
        assert len(rep) == 0 and len(dsts) == 0

    def test_isolated_vertex(self):
        rep, dsts, _ = expand_frontier(self.g(), np.array([3]))
        assert len(dsts) == 0

    def test_weights_parallel(self):
        g = from_edges([0, 0], [1, 2], num_vertices=3, weights=[7, 9])
        _, dsts, w = expand_frontier(g, np.array([0]), with_weights=True)
        assert sorted(zip(dsts.tolist(), w.tolist())) == [(1, 7), (2, 9)]


class TestScatterOps:
    def test_scatter_min_reports_only_decreases(self):
        labels = np.array([5, 5, 5], dtype=np.uint32)
        changed = scatter_min(labels, np.array([0, 1, 1]), np.array([7, 3, 4], dtype=np.uint32))
        assert changed.tolist() == [1]
        assert labels.tolist() == [5, 3, 5]

    def test_scatter_min_duplicates_take_minimum(self):
        labels = np.array([10], dtype=np.uint32)
        scatter_min(labels, np.array([0, 0, 0]), np.array([9, 2, 5], dtype=np.uint32))
        assert labels[0] == 2

    def test_scatter_min_empty(self):
        labels = np.array([1], dtype=np.uint32)
        out = scatter_min(labels, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint32))
        assert len(out) == 0

    def test_scatter_add_accumulates(self):
        labels = np.zeros(3, dtype=np.int64)
        touched = scatter_add(labels, np.array([1, 1, 2]), np.array([1, 1, 1]))
        assert labels.tolist() == [0, 2, 1]
        assert touched.tolist() == [1, 2]


class TestRegistry:
    def test_every_registered_app_instantiates(self):
        from repro.apps.registry import APPS

        for name in APPS:
            app = get_app(name)
            assert app.name == name
            assert app.fields()
            assert app.sync_plan()

    def test_unknown_app(self):
        with pytest.raises(ConfigurationError):
            get_app("hits")

    def test_study_benchmarks_are_registered(self):
        from repro.apps.registry import APPS, STUDY_BENCHMARKS

        assert set(STUDY_BENCHMARKS) <= set(APPS)
        assert len(STUDY_BENCHMARKS) == 5


class TestDirectionOptimizingSwitch:
    def test_pull_round_on_dense_frontier(self):
        """A frontier holding most edges triggers the pull path."""
        from repro.apps.bfs import DirectionOptBFS
        from repro.constants import INF

        # star: source sees every vertex -> frontier edges = |E|
        g = from_edges([0] * 30, range(1, 31), num_vertices=31)
        pg = partition(g, "oec", 1, cache=False)
        app = DirectionOptBFS()
        ctx = RunContext(num_global_vertices=31, source=0,
                         global_out_degrees=g.out_degrees())
        state = app.init_state(pg.parts[0], ctx)
        frontier = app.initial_frontier(pg.parts[0], ctx, state)
        out = app.compute(pg.parts[0], ctx, state, frontier)
        # the pull round scans in-edges of the 30 unvisited vertices
        assert out.edges_processed == 30
        assert np.all(state["dist"][1:] == 1)

    def test_pull_rounds_match_push_bfs(self, small_graph, ctx):
        """Forcing every round down the pull path (alpha=0) must give the
        same distances as plain push BFS — the lazily-built pull cache
        (reverse graph + shrinking unvisited pool) cannot change results
        across rounds."""
        from repro.apps.bfs import DirectionOptBFS

        pg = partition(small_graph, "cvc", 4, cache=False)
        push = BSPEngine(
            pg, bridges(4), get_app("bfs"), check_memory=False
        ).run(ctx)
        do = DirectionOptBFS()
        do.alpha = 0.0
        pull = BSPEngine(pg, bridges(4), do, check_memory=False).run(ctx)
        np.testing.assert_array_equal(push.labels, pull.labels)
        assert pull.stats.rounds == push.stats.rounds

    def test_default_switch_matches_push_bfs(self, small_graph, ctx):
        """With the stock alpha the mixed push/pull schedule still lands
        on identical distances."""
        pg = partition(small_graph, "cvc", 4, cache=False)
        push = BSPEngine(
            pg, bridges(4), get_app("bfs"), check_memory=False
        ).run(ctx)
        mixed = BSPEngine(
            pg, bridges(4), get_app("bfs-do"), check_memory=False
        ).run(ctx)
        np.testing.assert_array_equal(push.labels, mixed.labels)


class TestKcoreInternals:
    def test_vertex_processed_once_per_partition(self, small_sym, ctx):
        pg = partition(small_sym, "cvc", 4)
        app = get_app("kcore")
        eng = BSPEngine(pg, bridges(4), app, check_memory=False)
        res = eng.run(ctx)
        # no vertex's final degree can exceed its initial degree
        init = ctx.global_degrees
        assert np.all(res.labels.astype(np.int64) <= init)

    def test_k_zero_kills_nothing(self, small_sym, ctx):
        import dataclasses

        c = dataclasses.replace(ctx, k=0)
        pg = partition(small_sym, "oec", 4)
        res = BSPEngine(pg, bridges(4), get_app("kcore"), check_memory=False).run(c)
        assert np.array_equal(res.labels.astype(np.int64), ctx.global_degrees)

    def test_huge_k_kills_everything(self, small_sym, ctx):
        import dataclasses

        from repro.apps.kcore import KCore

        c = dataclasses.replace(ctx, k=10**6)
        pg = partition(small_sym, "oec", 4)
        res = BSPEngine(pg, bridges(4), get_app("kcore"), check_memory=False).run(c)
        assert not KCore.in_core(res.labels.astype(np.int64), c.k).any()


class TestPagerankInternals:
    def test_dangling_vertices_keep_base_rank(self, ctx, small_graph):
        pg = partition(small_graph, "oec", 4)
        res = BSPEngine(pg, bridges(4), get_app("pr"), check_memory=False).run(ctx)
        no_in = small_graph.in_degrees() == 0
        assert np.allclose(res.labels[no_in], 1.0 - ctx.damping)

    def test_missing_out_degrees_rejected(self, small_graph):
        ctx = RunContext(num_global_vertices=small_graph.num_vertices)
        pg = partition(small_graph, "oec", 2)
        with pytest.raises(ValueError):
            BSPEngine(
                pg, bridges(2), get_app("pr"), check_memory=False
            ).run(ctx)

    def test_rank_mass_close_to_reference_total(self, small_graph, ctx):
        from repro.validation import reference_pagerank

        pg = partition(small_graph, "cvc", 4)
        res = BSPEngine(pg, bridges(4), get_app("pr"), check_memory=False).run(ctx)
        ref = reference_pagerank(small_graph, tol=1e-6, max_iter=2000)
        assert res.labels.sum() == pytest.approx(ref.sum(), rel=1e-3)
