"""Tests for the framework facades: restrictions, aliases, and correctness."""

import numpy as np
import pytest

from repro.errors import SimulatedOOMError, UnsupportedFeatureError
from repro.frameworks import DIrGL, FRAMEWORKS, Groute, Gunrock, Lux, get_framework
from repro.generators import load_dataset
from repro.validation import pagerank_close, reference_bfs, reference_cc, reference_pagerank


@pytest.fixture(scope="module")
def ds():
    return load_dataset("tiny-s")


class TestRegistry:
    def test_four_frameworks(self):
        assert set(FRAMEWORKS) == {"d-irgl", "lux", "gunrock", "groute"}

    def test_get_framework(self):
        assert isinstance(get_framework("lux"), Lux)

    def test_unknown(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            get_framework("ligra")


class TestRestrictions:
    def test_lux_iec_only(self):
        with pytest.raises(UnsupportedFeatureError):
            Lux(policy="cvc")

    def test_lux_missing_benchmarks(self, ds):
        with pytest.raises(UnsupportedFeatureError):
            Lux().run("bfs", ds, 2)

    def test_gunrock_single_host_only(self, ds):
        with pytest.raises(UnsupportedFeatureError):
            Gunrock().run("bfs", ds, 4, platform="bridges")

    def test_gunrock_pr_excluded(self, ds):
        with pytest.raises(UnsupportedFeatureError):
            Gunrock().run("pr", ds, 2, platform="tuxedo")

    def test_groute_single_host_only(self, ds):
        with pytest.raises(UnsupportedFeatureError):
            Groute().run("cc", ds, 8, platform="bridges")

    def test_dirgl_all_four_policies(self):
        for p in ("cvc", "oec", "iec", "hvc"):
            assert DIrGL(policy=p).policy == p

    def test_dirgl_rejects_random(self):
        with pytest.raises(UnsupportedFeatureError):
            DIrGL(policy="random")


class TestVariants:
    def test_variant_labels(self):
        assert DIrGL.var1().variant_label() == "TWC+AS+Sync"
        assert DIrGL.var2().variant_label() == "ALB+AS+Sync"
        assert DIrGL.var3().variant_label() == "ALB+UO+Sync"
        assert DIrGL.var4().variant_label() == "ALB+UO+Async"

    def test_var4_is_default(self):
        d = DIrGL()
        assert d.execution == "async"
        assert d.comm_config.update_only
        assert d.load_balancer == "alb"


class TestCorrectnessThroughFacades:
    def test_dirgl_bfs(self, ds):
        res = DIrGL(policy="cvc").run("bfs", ds, 4, check_memory=False)
        ref = reference_bfs(ds.graph, ds.source_vertex)
        assert np.array_equal(res.labels, ref)

    def test_gunrock_bfs_uses_direction_optimization(self, ds):
        res = Gunrock().run("bfs", ds, 4, platform="tuxedo", check_memory=False)
        ref = reference_bfs(ds.graph, ds.source_vertex)
        assert np.array_equal(res.labels, ref)

    def test_all_frameworks_agree_on_cc(self, ds):
        ref = reference_cc(ds.symmetric())
        for name, cls in FRAMEWORKS.items():
            fw = cls()
            platform = "tuxedo" if not fw.multi_host else "bridges"
            res = fw.run("cc", ds, 4, platform=platform, check_memory=False)
            assert np.array_equal(res.labels, ref), name

    def test_lux_and_dirgl_agree_on_pr(self, ds):
        ref = reference_pagerank(ds.graph, tol=1e-6, max_iter=2000)
        for fw in (Lux(), DIrGL(policy="iec", execution="sync")):
            res = fw.run("pr", ds, 4, check_memory=False)
            assert pagerank_close(res.labels, ref), fw.name

    def test_stats_labeled(self, ds):
        res = DIrGL.var1().run("bfs", ds, 2, check_memory=False)
        assert res.stats.variant == "TWC+AS+Sync"
        assert res.stats.dataset == "tiny-s"
        assert res.stats.benchmark == "bfs"


class TestMemoryBehavior:
    def test_lux_fails_on_medium_graph_small_gpu_count(self):
        """Lux's static allocation cannot hold a medium graph on few GPUs
        (the paper could not run Lux on any large graph at all)."""
        ds = load_dataset("uk07-s")
        with pytest.raises(SimulatedOOMError):
            Lux().run("pr", ds, 2)

    def test_dirgl_handles_medium_on_same_gpus(self):
        ds = load_dataset("uk07-s")
        res = DIrGL(policy="cvc", execution="sync").run("bfs", ds, 8)
        assert res.stats.memory_max_gb < 16

    def test_lux_volume_exceeds_dirgl_as(self, ds):
        """Explicit global IDs + AS make Lux's wire volume the largest."""
        lux = Lux().run("cc", ds, 4, check_memory=False)
        var2 = DIrGL.var2(policy="iec").run("cc", ds, 4, check_memory=False)
        assert lux.stats.comm_volume_bytes > var2.stats.comm_volume_bytes
