"""Incremental re-execution must be bit-identical to from-scratch runs.

The heavy matrix drives :func:`repro.fuzz.cases.run_case`'s mutation
leg — every cell runs the engine on the base graph, applies seeded
insert/delete batches, re-runs the engine from scratch on the mutated
snapshot, and demands the incremental path (when it claims exactness)
match the from-scratch labels byte-for-byte.  All 13 fuzz shapes are
covered on both engines.

The unit tests below pin the decision logic itself: which batches take
the delta path, which fall back, and why.
"""

import numpy as np
import pytest

from repro.constants import INF
from repro.fuzz.cases import Case, run_case
from repro.fuzz.fuzzer import _sample_mutations
from repro.fuzz.gen import SHAPES, build_shape
from repro.graph import MutableGraph, from_edges
from repro.graph.transform import add_random_weights, make_undirected
from repro.serve.incremental import DELTA_APPS, incremental_run
from repro.validation import reference_bfs, reference_cc, reference_sssp

ENGINES = ("bsp", "basp")
#: one delta-capable app per label family: hop counts, weighted
#: distances, components (all async-capable, so both engines run them)
APPS = ("bfs", "sssp", "cc")


def _case_for(shape: str, engine: str, app: str) -> Case:
    rng = np.random.default_rng([hash(shape) % 2**32, len(app)])
    graph = build_shape(shape, rng)
    symmetric = app in ("cc", "cc-pj")
    if symmetric:
        graph = add_random_weights(
            make_undirected(graph), seed=int(rng.integers(2**31))
        )
    mutations = _sample_mutations(rng, graph, symmetric=symmetric)
    if not mutations:
        # n == 0 (the empty shape): still cover the empty-batch delta path
        mutations = [{"timestamp": 1, "insert": [], "delete": []}]
    return Case.from_graph(
        graph, app=app, policy="oec", parts=2, engine=engine,
        mutations=mutations, shape=shape,
        note=f"incremental equivalence {shape}/{engine}/{app}",
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_incremental_matches_full(shape, engine):
    """run_case's mutation leg raises CaseFailure on any divergence."""
    for app in APPS:
        labels = run_case(_case_for(shape, engine, app), check="cheap")
        assert labels is not None


# ---------------------------------------------------------------------- #
def _chain(weighted=False):
    w = np.array([2, 3], dtype=np.uint32) if weighted else None
    return from_edges([0, 1], [1, 2], num_vertices=5, weights=w)


class TestDeltaDecisions:
    def test_insert_only_takes_delta_path(self):
        g = _chain()
        prior = reference_bfs(g, 0)
        mg = MutableGraph(g)
        mg.insert_edges([2], [3], timestamp=1)
        new = mg.snapshot()
        res = incremental_run("bfs", g, new, mg.log, prior, source=0)
        assert res.mode == "delta"
        assert res.labels is not None
        assert res.labels.dtype == prior.dtype
        assert np.array_equal(res.labels, reference_bfs(new, 0))
        assert res.labels[3] == 3  # the inserted edge extended the chain

    def test_sssp_insert_uses_weights(self):
        g = _chain(weighted=True)
        prior = reference_sssp(g, 0)
        mg = MutableGraph(g)
        mg.insert_edges([0], [2], weights=[1], timestamp=1)  # shortcut
        new = mg.snapshot()
        res = incremental_run("sssp", g, new, mg.log, prior, source=0)
        assert res.mode == "delta"
        assert np.array_equal(res.labels, reference_sssp(new, 0))
        assert res.labels[2] == 1  # shortcut beats the 2+3 chain

    def test_tight_delete_forces_full(self):
        g = _chain()
        prior = reference_bfs(g, 0)
        mg = MutableGraph(g)
        mg.delete_edges([1], [2], timestamp=1)  # lies on the only path
        res = incremental_run("bfs", g, mg.snapshot(), mg.log, prior,
                              source=0)
        assert res.mode == "full"
        assert res.labels is None
        assert "shortest path" in res.reason

    def test_slack_delete_keeps_delta(self):
        # (0,2) direct edge w=5 is slack: the 2+3 chain is tight instead
        g = from_edges([0, 1, 0], [1, 2, 2], num_vertices=3,
                       weights=np.array([2, 3, 9], dtype=np.uint32))
        prior = reference_sssp(g, 0)
        mg = MutableGraph(g)
        mg.delete_edges([0], [2], timestamp=1)
        new = mg.snapshot()
        res = incremental_run("sssp", g, new, mg.log, prior, source=0)
        assert res.mode == "delta"
        assert np.array_equal(res.labels, reference_sssp(new, 0))

    def test_cc_any_effective_delete_forces_full(self):
        g = make_undirected(_chain())
        prior = reference_cc(g)
        mg = MutableGraph(g)
        mg.delete_edges([0, 1], [1, 0], timestamp=1)
        res = incremental_run("cc", g, mg.snapshot(), mg.log, prior)
        assert res.mode == "full"
        assert res.labels is None

    def test_cc_insert_merges_components(self):
        g = make_undirected(from_edges([0, 2], [1, 3], num_vertices=4))
        prior = reference_cc(g)
        assert prior[2] == 2  # two components before the merge
        mg = MutableGraph(g)
        mg.insert_edges([1, 2], [2, 1], timestamp=1)
        new = mg.snapshot()
        res = incremental_run("cc", g, new, mg.log, prior)
        assert res.mode == "delta"
        assert np.array_equal(res.labels, reference_cc(new))
        assert (res.labels == 0).all()  # one component now

    def test_delete_of_never_present_pair_is_safe(self):
        g = _chain()
        prior = reference_bfs(g, 0)
        mg = MutableGraph(g)
        mg.delete_edges([3], [4], timestamp=1)  # pair the graph never had
        res = incremental_run("bfs", g, mg.snapshot(), mg.log, prior,
                              source=0)
        assert res.mode == "delta"
        assert np.array_equal(res.labels, prior)

    def test_empty_batch_list_copies_prior(self):
        g = _chain()
        prior = reference_bfs(g, 0)
        res = incremental_run("bfs", g, g, [], prior, source=0)
        assert res.mode == "delta"
        assert np.array_equal(res.labels, prior)
        assert res.labels is not prior  # a copy, not an alias

    def test_float_apps_always_full(self):
        g = _chain()
        assert "pr" not in DELTA_APPS
        res = incremental_run(
            "pr", g, g, [], np.zeros(5, dtype=np.float64)
        )
        assert res.mode == "full"
        assert res.labels is None

    def test_unreachable_seed_stays_inert(self):
        # insert between two vertices the source never reaches: the sweep
        # must not invent finite distances out of INF seeds
        g = _chain()
        prior = reference_bfs(g, 0)
        assert prior[3] == INF and prior[4] == INF
        mg = MutableGraph(g)
        mg.insert_edges([3], [4], timestamp=1)
        new = mg.snapshot()
        res = incremental_run("bfs", g, new, mg.log, prior, source=0)
        assert res.mode == "delta"
        assert np.array_equal(res.labels, reference_bfs(new, 0))
        assert res.labels[4] == INF
