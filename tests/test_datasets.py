"""Tests for the Table I dataset registry."""

import numpy as np
import pytest

from repro.generators import DATASETS, dataset_names, load_dataset


class TestRegistry:
    def test_nine_paper_inputs(self):
        assert len(dataset_names()) == 9

    def test_categories(self):
        assert dataset_names("small") == ["rmat23-s", "orkut-s", "indochina04-s"]
        assert dataset_names("medium") == ["twitter50-s", "friendster-s", "uk07-s"]
        assert dataset_names("large") == ["clueweb12-s", "uk14-s", "wdc14-s"]

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_test_dataset_hidden_by_default(self):
        assert "tiny-s" not in dataset_names()
        assert "tiny-s" in dataset_names(include_test=True)


class TestLoad:
    def test_load_cached(self):
        a = load_dataset("tiny-s")
        b = load_dataset("tiny-s")
        assert a is b

    def test_weighted_by_default(self):
        ds = load_dataset("tiny-s")
        assert ds.graph.has_weights

    def test_scale_factor(self):
        ds = load_dataset("rmat23-s")
        assert np.isclose(
            ds.scale_factor, DATASETS["rmat23-s"].paper.num_edges / ds.graph.num_edges
        )
        assert ds.scale_factor > 100  # stand-ins are much smaller than paper inputs

    def test_source_vertex_is_max_out_degree(self):
        ds = load_dataset("tiny-s")
        deg = ds.graph.out_degrees()
        assert deg[ds.source_vertex] == deg.max()

    def test_symmetric_cached_and_symmetric(self):
        ds = load_dataset("tiny-s")
        sym = ds.symmetric()
        assert sym is ds.symmetric()
        assert np.array_equal(sym.out_degrees(), sym.in_degrees())


class TestFuzzNameValidation:
    """``fuzz:<shape>:<seed>`` parsing: every malformed name must raise
    the registry's KeyError with the malformed/unknown message — no bare
    ValueError from ``int()`` or numpy's rng, no bare KeyError from the
    shape lookup."""

    @pytest.mark.parametrize(
        "name",
        [
            "fuzz:powerlaw",          # missing seed
            "fuzz:powerlaw:1:extra",  # too many fields
            "fuzz:powerlaw:",         # empty seed
            "fuzz:powerlaw:x",        # non-integer seed
            "fuzz:powerlaw:1.5",      # float seed
            "fuzz:powerlaw:-3",       # negative seed (rng would reject)
            "fuzz:powerlaw:+1",       # int() would accept; alias of "1"
            "fuzz:powerlaw: 1",       # int() would accept; alias of "1"
            "fuzz:powerlaw:1_0",      # int() would accept; alias of "10"
            "fuzz:powerlaw:١",        # unicode digit; alias of "1"
        ],
    )
    def test_malformed_names_raise_the_registry_error(self, name):
        with pytest.raises(KeyError, match="malformed fuzz dataset"):
            load_dataset(name)

    def test_unknown_shape_raises_the_registry_error(self):
        with pytest.raises(KeyError, match="unknown fuzz shape"):
            load_dataset("fuzz:nope:1")

    def test_valid_names_still_load(self):
        ds = load_dataset("fuzz:powerlaw:7")
        assert ds.graph.num_vertices > 0
        assert ds.spec.category == "fuzz"


class TestShapeFidelity:
    """Shape statistics that the study's conclusions depend on."""

    def test_all_stand_ins_generate(self):
        for name in dataset_names():
            ds = load_dataset(name)
            assert ds.graph.num_edges > 0

    def test_average_degree_tracks_paper(self):
        for name in dataset_names():
            ds = load_dataset(name)
            paper = ds.spec.paper
            paper_avg = paper.num_edges / paper.num_vertices
            ours = ds.graph.num_edges / ds.graph.num_vertices
            assert ours == pytest.approx(paper_avg, rel=0.35), name

    def test_webcrawls_have_in_degree_blowup(self):
        # the trait behind ALB's win on pull pagerank (Section V-B2)
        for name in ["indochina04-s", "uk07-s", "clueweb12-s", "uk14-s", "wdc14-s"]:
            g = load_dataset(name).graph
            assert g.in_degrees().max() > 4 * g.out_degrees().max(), name

    def test_uk14_has_longest_tail(self):
        from repro.graph.properties import approximate_diameter

        d_uk14 = approximate_diameter(load_dataset("uk14-s").graph, seed=0)
        d_cw = approximate_diameter(load_dataset("clueweb12-s").graph, seed=0)
        assert d_uk14 > 2 * d_cw

    def test_twitter_has_extreme_out_hub(self):
        g = load_dataset("twitter50-s").graph
        deg = g.out_degrees()
        assert deg.max() > 50 * deg.mean()

    def test_scale_factors_ordered_by_size(self):
        small = load_dataset("rmat23-s").scale_factor
        large = load_dataset("wdc14-s").scale_factor
        assert large > small
