"""Tests for bitsets and wire-message size accounting."""

import numpy as np
import pytest

from repro.comm import Bitset, Message, MessageHeader
from repro.comm.buffers import HEADER_BYTES
from repro.constants import GID_BYTES


class TestBitset:
    def test_starts_clear(self):
        b = Bitset(10)
        assert b.count() == 0
        assert not b.any()

    def test_set_and_test(self):
        b = Bitset(10)
        b.set([2, 5])
        assert b.test(2) and b.test(5)
        assert not b.test(0)
        assert b.count() == 2

    def test_clear_subset(self):
        b = Bitset(10)
        b.set([1, 2, 3])
        b.clear([2])
        assert b.indices().tolist() == [1, 3]

    def test_clear_all(self):
        b = Bitset(10)
        b.set(np.arange(10))
        b.clear()
        assert b.count() == 0

    def test_packed_size(self):
        assert Bitset.packed_nbytes(0) == 0
        assert Bitset.packed_nbytes(1) == 1
        assert Bitset.packed_nbytes(8) == 1
        assert Bitset.packed_nbytes(9) == 2
        assert Bitset.packed_nbytes(64) == 8

    def test_empty_index_set(self):
        b = Bitset(5)
        b.set(np.empty(0, dtype=np.int64))
        assert b.count() == 0


def _msg(n=10, positions=None, exchange_len=0, explicit=False):
    vals = np.zeros(n, dtype=np.uint32)
    return Message(
        header=MessageHeader(0, 1, "reduce", "dist"),
        values=vals,
        positions=positions,
        exchange_len=exchange_len,
        explicit_ids=np.arange(n, dtype=np.int64) if explicit else None,
    )


class TestMessageWireBytes:
    def test_memoized_full_list(self):
        m = _msg(10)
        assert m.wire_bytes() == HEADER_BYTES + 40

    def test_memoized_subset_adds_bitset(self):
        m = _msg(4, positions=np.array([0, 2, 5, 9]), exchange_len=100)
        assert m.wire_bytes() == HEADER_BYTES + 16 + Bitset.packed_nbytes(100)

    def test_explicit_ids_add_gid_bytes(self):
        m = _msg(10, explicit=True)
        assert m.wire_bytes() == HEADER_BYTES + 40 + 10 * GID_BYTES

    def test_explicit_costs_more_than_memoized(self):
        assert _msg(50, explicit=True).wire_bytes() > _msg(50).wire_bytes()

    def test_num_elements(self):
        assert _msg(7).num_elements == 7
