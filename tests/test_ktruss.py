"""Tests for the k-truss extension benchmark."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import ktruss
from repro.generators import rmat
from repro.graph import from_edges, to_networkx
from repro.graph.transform import make_undirected
from repro.hw import bridges
from repro.partition import partition


@pytest.fixture(scope="module")
def sym():
    return make_undirected(rmat(9, edge_factor=6, seed=5))


@pytest.fixture(scope="module")
def nx_ref(sym):
    g = nx.Graph(to_networkx(sym))
    g.remove_edges_from(nx.selfloop_edges(g))
    return g


def ref_edges(nx_ref, k):
    sub = nx.k_truss(nx_ref, k)
    return {(min(u, v), max(u, v)) for u, v in sub.edges()}


class TestKTruss:
    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    @pytest.mark.parametrize("policy", ["cvc", "oec"])
    def test_matches_networkx(self, sym, nx_ref, k, policy):
        pg = partition(sym, policy, 8)
        res = ktruss(pg, bridges(8), k, scale_factor=10.0)
        assert res.surviving_edges() == ref_edges(nx_ref, k)

    def test_k2_keeps_everything(self, sym):
        """Every edge is trivially in the 2-truss."""
        pg = partition(sym, "oec", 4)
        res = ktruss(pg, bridges(4), 2)
        assert res.alive.all()

    def test_huge_k_kills_everything(self, sym):
        pg = partition(sym, "oec", 4)
        res = ktruss(pg, bridges(4), 1000)
        assert res.num_surviving == 0

    def test_triangle_free_graph_dies_at_k3(self):
        star = make_undirected(
            from_edges([0] * 10, range(1, 11), num_vertices=11)
        )
        pg = partition(star, "oec", 2)
        res = ktruss(pg, bridges(2), 3)
        assert res.num_surviving == 0

    def test_clique_survives(self):
        # K5 is a 5-truss: every edge is in 3 triangles
        src, dst = [], []
        for i in range(5):
            for j in range(5):
                if i != j:
                    src.append(i)
                    dst.append(j)
        k5 = from_edges(src, dst, num_vertices=5)
        pg = partition(k5, "oec", 2)
        res = ktruss(pg, bridges(2), 5)
        assert res.num_surviving == 10

    def test_invalid_k(self, sym):
        pg = partition(sym, "oec", 2)
        with pytest.raises(ValueError):
            ktruss(pg, bridges(2), 1)

    def test_stats_populated(self, sym):
        pg = partition(sym, "cvc", 8)
        res = ktruss(pg, bridges(8), 5, scale_factor=100.0)
        s = res.stats
        assert s.benchmark == "ktruss"
        assert s.rounds >= 1
        assert s.execution_time > 0
        assert s.work_items > 0

    def test_monotone_in_k(self, sym):
        pg = partition(sym, "cvc", 4)
        sizes = [
            ktruss(pg, bridges(4), k).num_surviving for k in (3, 4, 5, 6)
        ]
        assert sizes == sorted(sizes, reverse=True)
