"""Shared fixtures: small graphs and run contexts used across test modules."""

import numpy as np
import pytest

from repro.engine import RunContext
from repro.generators import rmat
from repro.graph.transform import add_random_weights, make_undirected


@pytest.fixture(scope="session")
def small_graph():
    """A weighted directed power-law graph (512 vertices, ~4k edges)."""
    return add_random_weights(rmat(9, edge_factor=8, seed=3), seed=0)


@pytest.fixture(scope="session")
def small_sym(small_graph):
    """Its symmetrized counterpart (for cc / kcore)."""
    return add_random_weights(make_undirected(small_graph), seed=1)


@pytest.fixture(scope="session")
def ctx(small_graph, small_sym):
    """A run context covering every app's needs on the small graph."""
    return RunContext(
        num_global_vertices=small_graph.num_vertices,
        source=int(np.argmax(small_graph.out_degrees())),
        k=8,
        global_out_degrees=small_graph.out_degrees(),
        global_degrees=small_sym.out_degrees(),
    )
