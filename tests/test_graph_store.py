"""Store-container suite: roundtrip, corruption rejection, atomicity.

The out-of-core pipeline trusts :mod:`repro.graph.store` completely —
workers re-open the container with validation mostly skipped
(``from_validated_arrays``), so every integrity property must be proven
here: lossless roundtrips for arbitrary graphs (hypothesis), loud
rejection of truncated/corrupt/foreign files, crash-atomic writes (a
SIGKILLed writer can never tear an existing container), and the external
two-pass build being bit-identical to the in-RAM builder no matter how
the edge stream is chunked.
"""

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.generators.chunked import build_store, rmat_chunks
from repro.generators.rmat import rmat
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph
from repro.graph.store import (
    STORE_MAGIC,
    from_edge_chunks,
    open_csr,
    store_info,
    verify_store,
    write_csr_store,
)
from repro.graph.transform import add_random_weights

# --------------------------------------------------------------------- #
# roundtrip (property-based)
# --------------------------------------------------------------------- #


@st.composite
def _graphs(draw) -> CSRGraph:
    n = draw(st.integers(min_value=1, max_value=40))
    m = draw(st.integers(min_value=0, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    weighted = draw(st.booleans())
    rng = np.random.default_rng(seed)
    g = from_edges(
        rng.integers(0, n, size=m), rng.integers(0, n, size=m),
        num_vertices=n, name="hyp",
    )
    return add_random_weights(g, seed=seed) if weighted else g


def _assert_same_graph(a: CSRGraph, b: CSRGraph) -> None:
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.indices, b.indices)
    assert a.indices.dtype == b.indices.dtype
    assert a.has_weights == b.has_weights
    if a.has_weights:
        np.testing.assert_array_equal(a.weights, b.weights)
        assert a.weights.dtype == b.weights.dtype


@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(g=_graphs())
def test_roundtrip_both_modes(g, tmp_path):
    path = str(tmp_path / f"hyp_{g.num_vertices}_{g.num_edges}.csr")
    header = write_csr_store(g, path)
    assert header["num_vertices"] == g.num_vertices
    assert header["num_edges"] == g.num_edges
    assert header["total_bytes"] == os.path.getsize(path)
    for mode in ("ram", "mmap"):
        g2 = open_csr(path, mode=mode)
        _assert_same_graph(g, g2)
        assert g2.name == "hyp"
        # identical bytes => identical identity for the partition cache
        assert g2.content_hash() == g.content_hash()


def test_mmap_mode_serves_memmaps(tmp_path):
    g = add_random_weights(rmat(5, seed=1), seed=0)
    path = str(tmp_path / "g.csr")
    write_csr_store(g, path)
    m = open_csr(path, mode="mmap")
    for arr in (m.indptr, m.indices, m.weights):
        # _freeze re-wraps the memmap in a zero-copy ndarray view
        assert isinstance(arr, np.memmap) or isinstance(arr.base, np.memmap)
        assert not arr.flags.writeable
    r = open_csr(path, mode="ram")
    for arr in (r.indptr, r.indices, r.weights):
        assert not isinstance(arr, np.memmap)
        assert not isinstance(arr.base, np.memmap)


def test_bad_mode_rejected(tmp_path):
    g = rmat(4, seed=0)
    path = str(tmp_path / "g.csr")
    write_csr_store(g, path)
    with pytest.raises(ValueError, match="mode"):
        open_csr(path, mode="disk")


# --------------------------------------------------------------------- #
# corruption / truncation rejection
# --------------------------------------------------------------------- #


def _store_path(tmp_path) -> str:
    g = add_random_weights(rmat(6, seed=2), seed=2)
    path = str(tmp_path / "g.csr")
    write_csr_store(g, path)
    return path


def test_truncated_file_rejected(tmp_path):
    path = _store_path(tmp_path)
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(size - 5)
    with pytest.raises(GraphFormatError, match="truncated"):
        store_info(path)
    with pytest.raises(GraphFormatError):
        open_csr(path, mode="mmap")


def test_padded_file_rejected(tmp_path):
    path = _store_path(tmp_path)
    with open(path, "ab") as f:
        f.write(b"\x00" * 16)
    with pytest.raises(GraphFormatError, match="truncated or padded"):
        store_info(path)


def test_foreign_file_rejected(tmp_path):
    path = str(tmp_path / "not_a_store.csr")
    with open(path, "wb") as f:
        f.write(b"\x00" * 8192)
    with pytest.raises(GraphFormatError, match="bad magic"):
        store_info(path)


def test_future_version_rejected(tmp_path):
    path = _store_path(tmp_path)
    with open(path, "r+b") as f:
        f.seek(len(STORE_MAGIC))
        f.write((99).to_bytes(4, "little"))
    with pytest.raises(GraphFormatError, match="version 99"):
        store_info(path)


def test_corrupt_header_rejected(tmp_path):
    path = _store_path(tmp_path)
    with open(path, "r+b") as f:
        f.seek(len(STORE_MAGIC) + 12 + 10)  # inside the JSON payload
        f.write(b"\xff")
    with pytest.raises(GraphFormatError, match="corrupt store header"):
        store_info(path)


def test_corrupt_section_caught_by_verify(tmp_path):
    path = _store_path(tmp_path)
    header = store_info(path)
    sec = header["sections"]["indices"]
    with open(path, "r+b") as f:
        f.seek(sec["offset"] + sec["nbytes"] // 2)
        byte = f.read(1)
        f.seek(-1, os.SEEK_CUR)
        f.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(GraphFormatError, match="CRC mismatch"):
        verify_store(path)
    # ram mode verifies by default; mmap must catch it when asked
    with pytest.raises(GraphFormatError, match="CRC mismatch"):
        open_csr(path, mode="ram")
    with pytest.raises(GraphFormatError, match="CRC mismatch"):
        open_csr(path, mode="mmap", verify=True)


def test_tampered_indptr_caught_without_full_verify(tmp_path):
    path = _store_path(tmp_path)
    header = store_info(path)
    sec = header["sections"]["indptr"]
    bad = np.memmap(path, dtype=np.dtype(sec["dtype"]), mode="r+",
                    offset=sec["offset"],
                    shape=(sec["nbytes"] // np.dtype(sec["dtype"]).itemsize,))
    bad[-1] = 0  # endpoints now disagree with |E|
    bad.flush()
    del bad
    with pytest.raises(GraphFormatError, match="indptr"):
        open_csr(path, mode="mmap")  # structural check runs even unverified


# --------------------------------------------------------------------- #
# atomicity
# --------------------------------------------------------------------- #


def test_failed_build_leaves_nothing(tmp_path):
    path = str(tmp_path / "g.csr")

    def chunks():
        yield np.array([0, 1]), np.array([1, 0])
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        from_edge_chunks(chunks(), path, num_vertices=2)
    assert not os.path.exists(path)
    assert os.listdir(tmp_path) == []  # no temp or spill leftovers


_KILLED_WRITER = textwrap.dedent("""
    import sys, time
    import numpy as np
    from repro.graph import store
    from repro.generators.rmat import rmat

    path = sys.argv[1]
    real = store._finalize_store

    def slow_finalize(*args, **kwargs):
        print("FINALIZING", flush=True)
        time.sleep(60)  # parent SIGKILLs us here, data written, not renamed
        real(*args, **kwargs)

    store._finalize_store = slow_finalize
    store.write_csr_store(rmat(7, seed=9), path)
""")


def test_sigkill_mid_write_never_tears_existing_store(tmp_path):
    """A writer killed after writing data but before the atomic rename must
    leave the previous container byte-for-byte intact."""
    path = str(tmp_path / "g.csr")
    original = add_random_weights(rmat(5, seed=4), seed=4)
    write_csr_store(original, path)
    before = verify_store(path)

    env = dict(os.environ)
    src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _KILLED_WRITER, path],
        stdout=subprocess.PIPE, env=env, text=True,
    )
    try:
        line = proc.stdout.readline()
        assert line.strip() == "FINALIZING"
        proc.kill()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
    assert proc.returncode == -signal.SIGKILL
    # the original survives full verification and still decodes identically
    assert verify_store(path) == before
    _assert_same_graph(original, open_csr(path, mode="ram"))


# --------------------------------------------------------------------- #
# external two-pass build
# --------------------------------------------------------------------- #


def test_from_edge_chunks_matches_from_edges_any_chunking(tmp_path):
    rng = np.random.default_rng(7)
    n, m = 50, 400
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    w = rng.integers(1, 100, size=m).astype(np.uint32)
    ref = from_edges(src, dst, num_vertices=n, weights=w)
    for chunk in (1, 7, 64, m):
        blocks = [
            (src[i : i + chunk], dst[i : i + chunk], w[i : i + chunk])
            for i in range(0, m, chunk)
        ]
        # tiny sort windows force the bounded per-row sort path
        for window in (16, 1 << 22):
            path = str(tmp_path / f"g{chunk}_{window}.csr")
            from_edge_chunks(
                iter(blocks), path, num_vertices=n,
                sort_window_edges=window,
            )
            _assert_same_graph(ref, open_csr(path, mode="ram"))


def test_from_edge_chunks_weight_seed_matches_in_ram_path(tmp_path):
    g = rmat(6, seed=3)
    ref = add_random_weights(g, seed=5)
    path = str(tmp_path / "g.csr")
    from_edge_chunks(
        [(g.edge_sources(), g.indices)], path,
        num_vertices=g.num_vertices, weight_seed=5,
    )
    _assert_same_graph(ref, open_csr(path, mode="ram"))


def test_from_edge_chunks_input_validation(tmp_path):
    path = str(tmp_path / "g.csr")
    two = np.array([0, 1])
    with pytest.raises(GraphFormatError, match="exceeds num_vertices"):
        from_edge_chunks([(two, np.array([1, 5]))], path, num_vertices=2)
    with pytest.raises(GraphFormatError, match="negative"):
        from_edge_chunks([(np.array([-1, 0]), two)], path, num_vertices=2)
    with pytest.raises(GraphFormatError, match="agree on whether"):
        from_edge_chunks(
            [(two, two, np.array([1, 1], dtype=np.uint32)), (two, two)],
            path, num_vertices=2,
        )
    with pytest.raises(GraphFormatError, match="mutually exclusive"):
        from_edge_chunks(
            [(two, two, np.array([1, 1], dtype=np.uint32))],
            path, num_vertices=2, weight_seed=3,
        )
    assert not os.path.exists(path)


def test_empty_stream_builds_empty_store(tmp_path):
    path = str(tmp_path / "empty.csr")
    header = from_edge_chunks([], path, num_vertices=5)
    assert header["num_edges"] == 0
    g = open_csr(path, mode="mmap")
    assert g.num_vertices == 5 and g.num_edges == 0


# --------------------------------------------------------------------- #
# chunked generators
# --------------------------------------------------------------------- #


def test_rmat_chunks_bit_identical_to_in_ram_generator():
    scale = 7
    ref = rmat(scale, edge_factor=16, seed=3)
    src = np.concatenate(
        [s for s, _ in rmat_chunks(scale, edge_factor=16, seed=3,
                                   chunk_edges=100)]
    )
    dst = np.concatenate(
        [d for _, d in rmat_chunks(scale, edge_factor=16, seed=3,
                                   chunk_edges=100)]
    )
    _assert_same_graph(ref, from_edges(src, dst, num_vertices=1 << scale))


def test_build_store_invariant_to_chunking(tmp_path):
    paths = []
    for chunk_edges in (257, 1 << 14):
        path = str(tmp_path / f"c{chunk_edges}.csr")
        build_store("rmat", 6, path, chunk_edges=chunk_edges, seed=11)
        paths.append(path)
    a, b = (verify_store(p) for p in paths)
    assert [s["crc32"] for s in a["sections"].values()] == [
        s["crc32"] for s in b["sections"].values()
    ]


def test_build_store_matches_in_ram_rmat_with_weights(tmp_path):
    path = str(tmp_path / "g.csr")
    build_store("rmat", 6, path, seed=3, weight_seed=0)
    ref = add_random_weights(rmat(6, edge_factor=16, seed=3), seed=0)
    _assert_same_graph(ref, open_csr(path, mode="ram"))


@pytest.mark.parametrize("kind", ["powerlaw", "smallworld"])
def test_other_chunked_kinds_build_valid_stores(tmp_path, kind):
    path = str(tmp_path / f"{kind}.csr")
    kwargs = {"avg_degree": 4.0} if kind == "powerlaw" else {}
    header = build_store(kind, 6, path, seed=2, chunk_edges=64, **kwargs)
    assert header["num_vertices"] == 64
    g = open_csr(path, mode="ram")  # full CRC verification
    assert g.num_edges == header["num_edges"] > 0
    # re-validate through the untrusted constructor too
    CSRGraph(np.asarray(g.indptr), np.asarray(g.indices),
             np.asarray(g.weights))
