"""Tests for the maximal-independent-set extension benchmark."""

import numpy as np
import pytest

from repro.apps import get_app, verify_mis
from repro.apps.mis import IN_SET, OUT_SET, UNDECIDED
from repro.engine import BSPEngine, RunContext
from repro.errors import ConfigurationError
from repro.generators import rmat
from repro.graph import from_edges
from repro.graph.transform import make_undirected
from repro.hw import bridges
from repro.partition import partition


@pytest.fixture(scope="module")
def sym():
    return make_undirected(rmat(9, edge_factor=6, seed=5))


@pytest.fixture(scope="module")
def mis_ctx(sym):
    return RunContext(
        num_global_vertices=sym.num_vertices,
        global_out_degrees=sym.out_degrees(),
        global_degrees=sym.out_degrees(),
    )


def run_mis(graph, ctx, policy, parts=8):
    pg = partition(graph, policy, parts)
    return BSPEngine(
        pg, bridges(parts), get_app("mis"), check_memory=False
    ).run(ctx)


class TestMIS:
    @pytest.mark.parametrize("policy", ["oec", "iec", "hvc", "cvc", "jagged"])
    def test_valid_mis_every_policy(self, sym, mis_ctx, policy):
        res = run_mis(sym, mis_ctx, policy)
        assert verify_mis(sym, res.labels)

    def test_partitioning_independent_answer(self, sym, mis_ctx):
        """Deterministic priorities: the SAME set regardless of policy."""
        a = run_mis(sym, mis_ctx, "oec").labels
        b = run_mis(sym, mis_ctx, "cvc").labels
        assert np.array_equal(a, b)

    def test_triangle(self):
        g = make_undirected(from_edges([0, 1, 2], [1, 2, 0], num_vertices=3))
        ctx = RunContext(num_global_vertices=3,
                         global_out_degrees=g.out_degrees(),
                         global_degrees=g.out_degrees())
        res = run_mis(g, ctx, "oec", parts=2)
        assert (res.labels == IN_SET).sum() == 1  # exactly one of a triangle
        assert verify_mis(g, res.labels)

    def test_star_center_or_leaves(self):
        g = make_undirected(from_edges([0] * 8, range(1, 9), num_vertices=9))
        ctx = RunContext(num_global_vertices=9,
                         global_out_degrees=g.out_degrees(),
                         global_degrees=g.out_degrees())
        res = run_mis(g, ctx, "oec", parts=2)
        assert verify_mis(g, res.labels)
        in_ct = (res.labels == IN_SET).sum()
        assert in_ct in (1, 8)  # center alone, or all leaves

    def test_isolated_vertices_stay_undecided(self):
        g = from_edges([0], [1], num_vertices=4)
        g = make_undirected(g)
        ctx = RunContext(num_global_vertices=4,
                         global_out_degrees=g.out_degrees(),
                         global_degrees=g.out_degrees())
        res = run_mis(g, ctx, "oec", parts=2)
        assert verify_mis(g, res.labels)
        assert res.labels[2] == UNDECIDED and res.labels[3] == UNDECIDED

    def test_mis_is_bsp_only(self, sym, mis_ctx):
        from repro.engine import BASPEngine

        pg = partition(sym, "oec", 4)
        with pytest.raises(ConfigurationError):
            BASPEngine(pg, bridges(4), get_app("mis"), check_memory=False)

    def test_missing_degrees_rejected(self, sym):
        ctx = RunContext(num_global_vertices=sym.num_vertices)
        pg = partition(sym, "oec", 4)
        with pytest.raises(ValueError):
            BSPEngine(
                pg, bridges(4), get_app("mis"), check_memory=False
            ).run(ctx)


class TestVerifyMis:
    def test_rejects_adjacent_in_pair(self):
        g = make_undirected(from_edges([0], [1], num_vertices=2))
        status = np.array([IN_SET, IN_SET], dtype=np.uint32)
        assert not verify_mis(g, status)

    def test_rejects_non_maximal(self):
        g = make_undirected(from_edges([0], [1], num_vertices=2))
        status = np.array([OUT_SET, OUT_SET], dtype=np.uint32)
        assert not verify_mis(g, status)

    def test_rejects_undecided_with_edges(self):
        g = make_undirected(from_edges([0], [1], num_vertices=2))
        status = np.array([UNDECIDED, IN_SET], dtype=np.uint32)
        assert not verify_mis(g, status)

    def test_accepts_valid(self):
        g = make_undirected(from_edges([0], [1], num_vertices=2))
        status = np.array([IN_SET, OUT_SET], dtype=np.uint32)
        assert verify_mis(g, status)
