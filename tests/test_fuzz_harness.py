"""The harness must catch planted bugs, replay deterministically, and
shrink failures to minimal cases.

The mutation half is the system's mutation-testing suite: each context
manager in :mod:`repro.fuzz.mutations` plants one realistic bug class
(lost mirror update, send-table off-by-one, dropped reduce partner,
stale partition-cache entry, wrong CC tie-break, dirty-bit off-by-one)
and the FULL-check fuzz battery must flag every one — plus stay quiet
when nothing is planted.
"""

import contextlib
import datetime
import json
from dataclasses import replace

import numpy as np
import pytest

from repro.fuzz import MUTATIONS, Case, fuzz, shrink_case
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.cli import week_seed
from repro.fuzz.fuzzer import FuzzFailure, _sample_case, _sibling_check
from repro.fuzz.mutations import run_candidates


# --------------------------------------------------------------------- #
# mutation detection
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_planted_bug_is_caught(name):
    assert run_candidates(MUTATIONS[name]), (
        f"planted bug {name!r} survived the FULL-check battery"
    )


def test_unmutated_battery_is_clean():
    # the same battery must pass without a planted bug, or the
    # "detections" above would be meaningless
    assert not run_candidates(contextlib.nullcontext)


# --------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------- #
def test_sampling_is_pure_in_seed_and_iteration():
    for i in (0, 3, 11):
        assert _sample_case(99, i) == _sample_case(99, i)
    assert _sample_case(99, 1) != _sample_case(100, 1)


def test_fuzz_runs_are_reproducible():
    a = fuzz(seed=42, iterations=8, shrink=False)
    b = fuzz(seed=42, iterations=8, shrink=False)
    assert a.iterations == b.iterations == 8
    assert a.cells_ok == b.cells_ok
    assert a.cells_crashed == b.cells_crashed
    assert [f.case for f in a.failures] == [f.case for f in b.failures]


# --------------------------------------------------------------------- #
# case format
# --------------------------------------------------------------------- #
def test_case_json_roundtrip():
    case = _sample_case(7, 2)
    again = Case.from_json(case.to_json())
    assert again == case


def test_case_rejects_unknown_schema_version():
    case = _sample_case(7, 2)
    data = json.loads(case.to_json())
    data["version"] = 999
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        Case.from_json(json.dumps(data))


def test_case_save_load(tmp_path):
    case = _sample_case(7, 3)
    path = case.save(str(tmp_path / "sub" / "case.json"))
    assert Case.load(path) == case


# --------------------------------------------------------------------- #
# shrinking
# --------------------------------------------------------------------- #
def test_shrink_minimizes_against_predicate():
    n = 12
    src = list(range(n - 1)) + [5, 7, 2]
    dst = list(range(1, n)) + [2, 3, 9]
    case = Case(app="bfs", policy="oec", parts=4, engine="bsp",
                num_vertices=n, src=src, dst=dst,
                fault_plan=[[1, 2]])

    def fails(c):
        return any(s == 0 and d == 1 for s, d in zip(c.src, c.dst))

    shrunk = shrink_case(case, fails=fails)
    assert fails(shrunk)
    assert len(shrunk.src) == 1  # exactly the culprit edge
    assert shrunk.num_vertices == 2  # isolated vertices compacted away
    assert shrunk.parts == 1
    assert shrunk.fault_plan == []
    assert shrunk.note.endswith("(shrunk)")


def test_shrink_keeps_symmetric_graphs_symmetric():
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]
    src = [a for a, b in pairs] + [b for a, b in pairs]
    dst = [b for a, b in pairs] + [a for a, b in pairs]
    case = Case(app="cc", policy="oec", parts=2, engine="bsp",
                num_vertices=5, src=src, dst=dst)

    def fails(c):
        return any(s == 0 and d == 1 for s, d in zip(c.src, c.dst))

    shrunk = shrink_case(case, fails=fails)
    edges = set(zip(shrunk.src, shrunk.dst))
    assert all((d, s) in edges for s, d in edges), "symmetry broken"
    assert fails(shrunk)


def test_shrink_returns_nonfailing_case_untouched():
    case = Case(app="bfs", policy="oec", parts=2, engine="bsp",
                num_vertices=3, src=[0, 1], dst=[1, 2])
    assert shrink_case(case, fails=lambda c: False) == case


# --------------------------------------------------------------------- #
# sibling differential
# --------------------------------------------------------------------- #
def test_sibling_differential_flags_disagreement():
    case = Case(app="bfs", policy="oec", parts=2, engine="bsp",
                num_vertices=3, src=[0, 1], dst=[1, 2])
    sibling = replace(case, policy="cvc", parts=4)
    store = {}
    assert _sibling_check(case, np.asarray([0, 1, 2]), store) is None
    ok = _sibling_check(sibling, np.asarray([0, 1, 2]), store)
    assert ok is None  # agreement across configs
    bad = _sibling_check(sibling, np.asarray([0, 1, 9]), store)
    assert isinstance(bad, FuzzFailure)
    assert bad.kind == "sibling-differential"


def test_sibling_differential_skips_faulted_and_float_apps():
    store = {}
    faulted = Case(app="bfs", policy="oec", parts=2, engine="bsp",
                   num_vertices=3, src=[0], dst=[1], fault_plan=[[0, 1]])
    assert _sibling_check(faulted, np.asarray([0, 1, 9]), store) is None
    pr = Case(app="pr", policy="oec", parts=2, engine="bsp",
              num_vertices=3, src=[0], dst=[1])
    assert _sibling_check(pr, np.asarray([0.1]), store) is None
    assert store == {}


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def test_week_seed_is_iso_year_and_week():
    assert week_seed(datetime.date(2020, 1, 1)) == 2020 * 100 + 1
    # Jan 1 2027 falls in ISO week 53 of ISO year 2026
    d = datetime.date(2027, 1, 1)
    iso = d.isocalendar()
    assert week_seed(d) == iso[0] * 100 + iso[1]


def test_cli_deterministic_batch_exits_clean(capsys):
    assert fuzz_main(["--seed", "1", "--iterations", "4", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "seed=1" in out and "4 iterations" in out


def test_cli_replays_committed_case(capsys):
    rc = fuzz_main(
        ["--replay", "tests/cases/ccpj_filtered_jump_write.json"]
    )
    assert rc == 0


def test_cli_requires_a_bound():
    with pytest.raises(SystemExit):
        fuzz_main(["--seed", "3"])


def test_cli_writes_failure_cases(tmp_path, capsys):
    # plant a bug, then demand the CLI finds it, shrinks it, and writes
    # a replayable case file
    with MUTATIONS["cc-wrong-tiebreak"]():
        rc = fuzz_main([
            "--seed", "1", "--iterations", "40", "--quiet",
            "--max-failures", "1", "--out", str(tmp_path),
        ])
    assert rc == 1
    cases = list(tmp_path.glob("*.json"))
    assert cases, "no failing case written"
    loaded = Case.load(str(cases[0]))
    assert loaded.app in ("cc", "cc-pj")
