"""The analytics service: queueing, traffic, and the event loop."""

import json

import numpy as np
import pytest

from repro.serve.cli import main as serve_main
from repro.serve.cli import run_trace
from repro.serve.queueing import AdmissionController, WFQQueue
from repro.serve.service import ServeConfig
from repro.serve.traffic import (
    MutationEvent,
    Request,
    TrafficConfig,
    batch_from_event,
    generate_trace,
)


class TestWFQ:
    def test_fifo_within_one_flow(self):
        q = WFQQueue()
        for item in "abc":
            q.push("c0", item)
        assert [q.pop(), q.pop(), q.pop()] == ["a", "b", "c"]
        assert q.pop() is None

    def test_heavier_flow_drains_first(self):
        q = WFQQueue()
        q.set_weight("heavy", 3.0)
        q.push("light", "l1")
        q.push("heavy", "h1")
        q.push("light", "l2")
        q.push("heavy", "h2")
        # finish tags: light 1, 2; heavy 1/3, 2/3
        assert [q.pop() for _ in range(4)] == ["h1", "h2", "l1", "l2"]

    def test_equal_weights_interleave_by_arrival(self):
        q = WFQQueue()
        q.push("a", "a1")
        q.push("b", "b1")
        q.push("a", "a2")
        q.push("b", "b2")
        assert [q.pop() for _ in range(4)] == ["a1", "b1", "a2", "b2"]

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            WFQQueue().set_weight("x", 0.0)

    def test_idle_flow_does_not_bank_credit(self):
        q = WFQQueue()
        q.push("a", "a1")
        q.pop()  # virtual clock advances to a's finish tag
        q.push("b", "b1")
        q.push("a", "a2")
        # b gets max(V, 0) + 1 = a's tag basis: no starvation of a
        assert q.pop() == "b1"
        assert q.pop() == "a2"


class TestAdmission:
    def test_depth_cap(self):
        a = AdmissionController(max_queue_depth=2)
        assert a.admit(0) and a.admit(1)
        assert not a.admit(2)
        assert (a.admitted, a.rejected) == (2, 1)


class TestTraffic:
    def test_trace_is_deterministic(self):
        cfg = TrafficConfig(seed=9, num_requests=40)
        assert generate_trace(cfg).to_json() == generate_trace(cfg).to_json()

    def test_events_time_ordered(self):
        trace = generate_trace(TrafficConfig(seed=2, num_requests=50,
                                             mutate_every=10))
        times = [e.time for e in trace.events()]
        assert times == sorted(times)
        assert trace.mutations  # the mutation axis actually fired

    def test_deletes_reference_live_edges(self):
        trace = generate_trace(TrafficConfig(seed=4, num_requests=40,
                                             mutate_every=10))
        graphs = trace.build_graphs()
        for ev in trace.events():
            if isinstance(ev, MutationEvent):
                g = graphs[ev.graph_id]
                src, dst = g.edge_list()
                live = set(zip(src.tolist(), dst.tolist()))
                for pair in zip(ev.delete_src, ev.delete_dst):
                    assert pair in live
                g.apply(batch_from_event(ev))

    def test_source_params_in_range(self):
        trace = generate_trace(TrafficConfig(seed=5, num_requests=60))
        graphs = trace.build_graphs()
        for r in trace.requests:
            for name, value in r.params:
                if name == "source":
                    assert 0 <= value < graphs[r.graph_id].num_vertices


# a small, fast, coalesce-heavy workload shared by the service tests
TRAFFIC = TrafficConfig(
    seed=13, num_requests=36, num_clients=3, mean_interarrival=0.001,
    apps=("bfs", "cc", "pr"), graphs=((5, 3.0), (6, 3.0)), mutate_every=12,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TRAFFIC)


@pytest.fixture(scope="module")
def report(trace):
    return run_trace(trace, ServeConfig(workers=2), jobs=1)


class TestService:
    def test_all_requests_accounted(self, trace, report):
        c = report.counters
        assert c["requests"] == TRAFFIC.num_requests
        assert len(report.requests) == TRAFFIC.num_requests
        assert c["failed"] == 0
        served = [r for r in report.requests if r["served_by"] != "rejected"]
        assert all(r["latency"] is not None for r in served)

    def test_mutations_applied(self, trace, report):
        assert report.counters["mutations"] == len(trace.mutations)

    def test_coalescing_and_caching_fire(self, report):
        assert report.counters["coalesced"] > 0
        assert report.counters["cache_hits"] > 0
        # far fewer physical executions than requests
        assert report.counters["executions"] < report.counters["requests"]

    def test_latencies_are_simulated_and_positive(self, report):
        lat = report.latency
        assert lat["count"] > 0
        assert 0 < lat["median"] <= lat["p90"] <= lat["max"]
        assert lat["makespan"] > 0

    def test_report_byte_identical_across_fresh_services(self, trace, report):
        again = run_trace(trace, ServeConfig(workers=2), jobs=1)
        assert again.to_json() == report.to_json()

    def test_naive_baseline_runs_everything(self, trace):
        naive = run_trace(trace, ServeConfig.naive(workers=2), jobs=1)
        c = naive.counters
        assert c["coalesced"] == 0
        assert c["cache_hits"] == 0
        assert c["delta_runs"] == 0
        assert c["executions"] == c["requests"]  # every request runs

    def test_serve_beats_naive_on_median_latency(self, trace, report):
        naive = run_trace(trace, ServeConfig.naive(workers=2), jobs=1)
        assert report.latency["median"] < naive.latency["median"]

    def test_admission_sheds_load_under_pressure(self, trace):
        cfg = ServeConfig(
            workers=1, max_queue_depth=1, coalesce=False,
            result_cache_entries=0, incremental=False, patch_mode="never",
        )
        rep = run_trace(trace, cfg, jobs=1)
        assert rep.counters["rejected"] > 0
        rejected = [r for r in rep.requests if r["served_by"] == "rejected"]
        assert len(rejected) == rep.counters["rejected"]
        assert all(r["latency"] is None for r in rejected)

    def test_incremental_verified_against_full(self, trace):
        # differential mode re-runs every delta through the engine and
        # raises on any label divergence — completing cleanly IS the test
        cfg = ServeConfig(workers=2, verify_incremental=True)
        rep = run_trace(trace, cfg, jobs=1)
        assert rep.counters["failed"] == 0

    def test_mutation_invalidates_result_cache(self, trace):
        rep = run_trace(trace, ServeConfig(workers=2), jobs=1)
        # group served results by (graph, app, params); across a mutation
        # the content hash changes, so crc streams may change but every
        # request in between serves a consistent answer
        by_key = {}
        for r in rep.requests:
            if r["served_by"] == "rejected" or r["labels_crc"] is None:
                continue
            by_key.setdefault(
                (r["graph_id"], r["app"], tuple(map(tuple, r["params"]))),
                [],
            ).append(r["labels_crc"])
        assert any(len(set(v)) > 1 for v in by_key.values()), (
            "mutations never changed any served answer — staleness "
            "regression would be invisible to this workload"
        )


class TestCLI:
    def test_simulate_writes_report_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = serve_main([
            "--simulate", "--seed", "13", "--requests", "24",
            "--graphs", "5:3", "--mean-interarrival", "0.001",
            "--jobs", "1", "--report", str(out), "--quiet",
        ])
        assert rc == 0
        rep = json.loads(out.read_text())
        assert rep["counters"]["failed"] == 0
        assert rep["counters"]["requests"] == 24

    def test_trace_out_round_trips(self, tmp_path):
        out = tmp_path / "trace.json"
        rc = serve_main([
            "--simulate", "--seed", "3", "--requests", "12",
            "--graphs", "5:3", "--jobs", "1",
            "--report", str(tmp_path / "r.json"),
            "--trace-out", str(out), "--quiet",
        ])
        assert rc == 0
        data = json.loads(out.read_text())
        assert len(data["requests"]) == 12
