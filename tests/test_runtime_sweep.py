"""Tests for the sweep runtime: picklable cell specs, the worker-side
runner, the process-pool executor, and its fault-recovery paths (broken
pools, simulated crashes, real bugs)."""

import logging
import multiprocessing
import os
import time
from collections import Counter

import numpy as np
import pytest

from repro.errors import (
    ReproError,
    SimulatedCrashError,
    SimulatedOOMError,
    UnsupportedFeatureError,
)
from repro.partition.cache import configure
from repro.runtime.cells import (
    CellOutcome,
    CellSpec,
    PartitionStatsSpec,
    SystemSpec,
    run_task,
)
from repro.runtime.sweep import SweepExecutor, default_start_method


@pytest.fixture
def restore_global_cache():
    yield
    configure(cache_dir=None)


def _cell(key, bench="bfs", system=None, **kw):
    return CellSpec(
        key=key,
        system=system or SystemSpec.dirgl(policy="iec"),
        benchmark=bench,
        dataset="tiny-s",
        num_gpus=2,
        check_memory=False,
        **kw,
    )


class TestSystemSpec:
    def test_variant_builds(self):
        fw = SystemSpec.variant("var1", "cvc").build()
        assert hasattr(fw, "run")

    def test_dirgl_builds_with_kwargs(self):
        fw = SystemSpec.dirgl(policy="oec", execution="sync").build()
        assert fw.policy == "oec"

    def test_framework_builds_from_registry(self):
        fw = SystemSpec.framework("lux").build()
        assert hasattr(fw, "run")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown SystemSpec kind"):
            SystemSpec("nonsense").build()

    def test_specs_are_hashable_and_picklable(self):
        import pickle

        spec = _cell(("a", 1))
        assert pickle.loads(pickle.dumps(spec)) == spec
        hash(spec.system)


class TestRunTask:
    def test_cell_outcome_fields(self):
        out = run_task(_cell("k1"))
        assert out.ok
        assert out.key == "k1"
        assert out.stats is not None
        assert out.pstats is None
        assert isinstance(out.labels_crc, int)
        assert out.labels is None  # not kept unless asked
        assert out.elapsed > 0

    def test_keep_labels(self):
        out = run_task(_cell("k1", keep_labels=True))
        assert isinstance(out.labels, np.ndarray)

    def test_partition_stats_spec(self):
        out = run_task(
            PartitionStatsSpec(key="p1", dataset="tiny-s", policy="cvc", num_gpus=4)
        )
        assert out.ok
        assert out.pstats is not None
        assert out.pstats.num_partitions == 4
        assert out.stats is None

    def test_labels_crc_is_deterministic(self):
        a = run_task(_cell("x"))
        b = run_task(_cell("y"))
        assert a.labels_crc == b.labels_crc


#: Environment variable naming the append-only file where the logging
#: ``run_task`` wrapper below records every invocation (one key per line).
#: An env var + file survives the process boundary; a plain counter would
#: only count parent-side calls.
_RUN_LOG_ENV = "REPRO_TEST_RUN_LOG"


def _logging_run_task(spec):
    """Module-level (hence picklable-by-reference) ``run_task`` wrapper:
    logs each invocation, then dies hard for "kamikaze" cells — but only
    inside a pool worker, so the serial fallback completes them."""
    path = os.environ.get(_RUN_LOG_ENV)
    if path:
        with open(path, "a") as f:
            f.write(f"{spec.key}\n")
    if (
        str(spec.key).startswith("kamikaze")
        and multiprocessing.parent_process() is not None
    ):
        # give the sibling cells time to finish and be harvested first,
        # then die the way the OS OOM-killer would: no exception, no exit
        # handlers, just a dead worker and a BrokenProcessPool
        time.sleep(1.0)
        os._exit(1)
    return run_task(spec)


class TestFailureTaxonomy:
    def test_ok_outcome_does_not_raise(self):
        CellOutcome(key="k").raise_failure()

    def test_oom_rebuilds_original_exception(self):
        # run_task stores the constructor args because SimulatedOOMError's
        # __init__ takes (gpu_index, required_bytes, capacity_bytes), not
        # a message string
        e = SimulatedOOMError(3, 2**34, 2**33)
        out = CellOutcome(
            key="k",
            failure=str(e),
            failure_kind="oom",
            extra={"oom_args": (e.gpu_index, e.required_bytes, e.capacity_bytes)},
        )
        with pytest.raises(SimulatedOOMError) as exc:
            out.raise_failure()
        assert exc.value.gpu_index == 3
        assert exc.value.required_bytes == 2**34
        assert out.failure_label().startswith("oom: ")

    def test_oom_without_args_degrades_to_repro_error(self):
        out = CellOutcome(key="k", failure="oom happened", failure_kind="oom")
        with pytest.raises(ReproError):
            out.raise_failure()

    def test_unsupported(self):
        out = CellOutcome(key="k", failure="no async", failure_kind="unsupported")
        with pytest.raises(UnsupportedFeatureError):
            out.raise_failure()
        assert out.failure_label() == "unsupported: no async"
        assert not out.ok

    def test_crash_rebuilds_original_exception(self):
        e = SimulatedCrashError(
            "GPU 2 crashed at round 5 (fault plan)", gpu_index=2, round_index=5
        )
        out = CellOutcome(
            key="k",
            failure=str(e),
            failure_kind="crash",
            extra={"crash_args": (str(e), e.gpu_index, e.round_index)},
        )
        with pytest.raises(SimulatedCrashError) as exc:
            out.raise_failure()
        assert exc.value.gpu_index == 2
        assert exc.value.round_index == 5
        assert out.failure_label().startswith("crash: ")
        assert not out.ok

    def test_crash_without_args_still_raises_crash_type(self):
        out = CellOutcome(key="k", failure="worker died", failure_kind="crash")
        with pytest.raises(SimulatedCrashError, match="worker died"):
            out.raise_failure()

    def test_generic_error(self):
        out = CellOutcome(key="k", failure="boom", failure_kind="error")
        with pytest.raises(ReproError):
            out.raise_failure()
        assert out.failure_label() == "boom"


class TestSweepExecutor:
    def test_serial_preserves_submission_order(self):
        specs = [_cell(i, bench=b) for i, b in enumerate(("cc", "bfs", "pr"))]
        with SweepExecutor(jobs=1) as ex:
            outs = ex.map(specs)
        assert [o.key for o in outs] == [0, 1, 2]
        assert all(o.ok for o in outs)

    def test_pool_preserves_submission_order(self):
        specs = [_cell(i, bench=b) for i, b in enumerate(("cc", "bfs", "pr"))]
        with SweepExecutor(jobs=2) as ex:
            outs = ex.map(specs)
        assert [o.key for o in outs] == [0, 1, 2]
        assert all(o.ok for o in outs)

    def test_single_spec_short_circuits_to_serial(self):
        with SweepExecutor(jobs=4) as ex:
            outs = ex.map([_cell("only")])
        assert ex._pool is None  # no pool was ever spun up
        assert outs[0].ok

    def test_close_is_idempotent(self):
        """Satellite regression: a second close() after close() (the
        serve loop's shutdown can overlap __exit__) must not raise."""
        ex = SweepExecutor(jobs=2)
        ex.map([_cell("a"), _cell("b", bench="cc")])
        ex.close()
        assert ex._pool is None
        ex.close()  # second close: no-op, no raise
        ex.close(cancel_futures=False)

    def test_exit_after_explicit_close_is_noop(self):
        with SweepExecutor(jobs=2) as ex:
            ex.map([_cell("a"), _cell("b", bench="cc")])
            ex.close()
        # __exit__ ran after close() without raising; pool stays gone
        assert ex._pool is None

    def test_map_after_close_reopens_cleanly(self):
        ex = SweepExecutor(jobs=2)
        ex.map([_cell("a"), _cell("b", bench="cc")])
        ex.close()
        outs = ex.map([_cell("c"), _cell("d", bench="cc")])
        assert all(o.ok for o in outs)
        ex.close()

    def test_engine_executor_stamped_onto_cells(self):
        ex = SweepExecutor(jobs=1, engine_executor="threads")
        cell = ex._prepare(_cell("c"))
        assert cell.engine_executor == "threads"
        # an explicit per-spec choice wins over the sweep-wide default
        explicit = _cell("c", engine_executor="threads")
        assert ex._prepare(explicit) is explicit
        # partition-stats specs run no engine and pass through untouched
        ps = PartitionStatsSpec(key="p", dataset="tiny-s", policy="cvc", num_gpus=2)
        assert ex._prepare(ps) is ps

    def test_cache_dir_shared_across_cells(self, tmp_path, restore_global_cache):
        store = str(tmp_path / "pcache")
        with SweepExecutor(jobs=1, cache_dir=store) as ex:
            first = ex.map([_cell("a"), _cell("b", bench="cc")])
            again = ex.map([_cell("c"), _cell("d", bench="cc")])
        assert all(o.ok for o in first + again)
        assert sum(o.partition_builds for o in first) >= 1
        # same dataset/policy/parts: nothing re-partitions on the rerun
        assert sum(o.partition_builds for o in again) == 0
        import os

        assert os.listdir(store)


class TestFaultRecovery:
    """The sweep's three failure paths: a worker killed by the OS, a
    simulated crash crossing the process boundary, and a real bug."""

    def test_broken_pool_keeps_completed_outcomes(
        self, tmp_path, monkeypatch, caplog
    ):
        if default_start_method() != "fork":
            pytest.skip("pool-side monkeypatching requires fork workers")
        import repro.runtime.sweep as sweep_mod

        run_log = tmp_path / "runs.log"
        monkeypatch.setenv(_RUN_LOG_ENV, str(run_log))
        # the pool is created lazily inside map(), so fork workers inherit
        # the patched module and submit() pickles the wrapper by reference
        monkeypatch.setattr(sweep_mod, "run_task", _logging_run_task)
        specs = [
            _cell("ok-0"),
            _cell("ok-1", bench="cc"),
            _cell("kamikaze", bench="pr"),
        ]
        with caplog.at_level(logging.WARNING, logger="repro.runtime.sweep"):
            with SweepExecutor(jobs=2) as ex:
                outs = ex.map(specs)
        # submission order and success are unaffected by the broken pool
        assert [o.key for o in outs] == ["ok-0", "ok-1", "kamikaze"]
        assert all(o.ok for o in outs)
        # completed cells were harvested, NOT re-executed: one invocation
        # each; only the kamikaze cell ran twice (dead worker + fallback)
        counts = Counter(run_log.read_text().splitlines())
        assert counts["ok-0"] == 1
        assert counts["ok-1"] == 1
        assert counts["kamikaze"] == 2
        # the fallback cell really ran in the parent this time
        assert outs[2].extra["worker_pid"] == os.getpid()
        warnings = [r for r in caplog.records if "process pool broke" in r.message]
        assert len(warnings) == 1
        assert "re-running 1 of 3" in warnings[0].getMessage()

    def test_simulated_crash_round_trips_through_pool(self):
        specs = [
            _cell("ok"),
            _cell(
                "boom",
                system=SystemSpec.dirgl(policy="iec", execution="sync"),
                fault_plan=((0, 0),),
            ),
        ]
        with SweepExecutor(jobs=2) as ex:
            ok, boom = ex.map(specs)
        assert ok.ok
        assert boom.failure_kind == "crash"
        assert boom.failure_label().startswith("crash: ")
        with pytest.raises(SimulatedCrashError) as exc:
            boom.raise_failure()
        # the crash site survived pickling through the CellOutcome
        assert exc.value.gpu_index == 0
        assert exc.value.round_index == 0

    def test_simulated_crash_serial_matches_pool(self):
        spec = _cell(
            "boom",
            system=SystemSpec.dirgl(policy="iec", execution="sync"),
            fault_plan=((1, 2),),
        )
        out = run_task(spec)
        assert out.failure_kind == "crash"
        with pytest.raises(SimulatedCrashError) as exc:
            out.raise_failure()
        assert exc.value.gpu_index == 1
        assert exc.value.round_index == 2

    def test_real_bug_shuts_the_pool_down(self):
        specs = [
            _cell("bad", system=SystemSpec("nonsense")),
            _cell("q-0"),
            _cell("q-1", bench="cc"),
            _cell("q-2", bench="pr"),
        ]
        ex = SweepExecutor(jobs=2)
        with pytest.raises(ValueError, match="unknown SystemSpec kind"):
            ex.map(specs)
        # no orphan workers grinding through the rest of the matrix
        assert ex._pool is None


class TestShardPlan:
    """Batch dispatch grouped by dataset: one graph open per worker batch,
    RSS telemetry on every outcome, results bit-identical to per-cell
    dispatch."""

    @staticmethod
    def _spec(key, bench="bfs", dataset="tiny-s"):
        return CellSpec(
            key=key,
            system=SystemSpec.dirgl(policy="iec", execution="sync"),
            benchmark=bench,
            dataset=dataset,
            num_gpus=2,
            check_memory=False,
        )

    def _store_cells(self, tmp_path):
        from repro.generators.chunked import build_store

        path = str(tmp_path / "g.csr")
        build_store("rmat", 8, path, seed=7)
        return [
            self._spec((b,), bench=b, dataset=f"store+mmap:{path}")
            for b in ("bfs", "pr-push")
        ]

    def test_shard_batches_split_to_fill_pool(self):
        ex = SweepExecutor(jobs=4, shard_plan=True)
        specs = [self._spec(i) for i in range(4)]  # one dataset, four cells
        batches = ex._shard_batches(specs)
        assert len(batches) == 4
        assert sorted(i for b in batches for i in b) == [0, 1, 2, 3]
        # many datasets: one batch each, no splitting
        mixed = [self._spec(0), self._spec(1, dataset="rmat24-s"), self._spec(2)]
        grouped = SweepExecutor(jobs=2, shard_plan=True)._shard_batches(mixed)
        assert grouped == [[0, 2], [1]]

    def test_shard_plan_matches_per_cell_dispatch(
        self, tmp_path, restore_global_cache
    ):
        cache_dir = str(tmp_path / "pcache")
        with SweepExecutor(jobs=1, cache_dir=cache_dir) as ex:
            base = ex.map(self._store_cells(tmp_path))
        with SweepExecutor(
            jobs=2, cache_dir=cache_dir, shard_plan=True,
            spill_shards=True, start_method="spawn",
        ) as ex:
            sharded = ex.map(self._store_cells(tmp_path))
        assert all(o.ok for o in base + sharded)
        for a, b in zip(base, sharded):
            assert a.key == b.key  # submission order preserved
            assert a.labels_crc == b.labels_crc
            assert a.stats.rounds == b.stats.rounds

    def test_map_after_close_rebuilds_shard_plan_and_rss_meter(
        self, tmp_path, restore_global_cache
    ):
        """Reopening a closed executor must rebuild the shard-planned
        dispatch on a fresh pool: batches still group by dataset and every
        outcome still carries the per-worker RSS meter."""
        ex = SweepExecutor(
            jobs=2, cache_dir=str(tmp_path / "pcache"), shard_plan=True,
            spill_shards=True,
        )
        first = ex.map(self._store_cells(tmp_path))
        ex.close()
        assert ex._pool is None
        second = ex.map(self._store_cells(tmp_path))  # lazily reopens
        ex.close()
        assert all(o.ok for o in first + second)
        for a, b in zip(first, second):
            assert a.key == b.key
            assert a.labels_crc == b.labels_crc
        for o in second:
            # extra["rss"] is attached only by shard-planned batch
            # dispatch, so its presence proves both the plan and the RSS
            # meter came back on the fresh pool
            rss = o.extra["rss"]
            assert rss["peak_bytes"] >= rss["baseline_bytes"] >= 0
            assert rss["source"] in ("RssAnon", "VmRSS", "ru_maxrss")

    def test_shard_plan_outcomes_carry_rss(self, tmp_path, restore_global_cache):
        with SweepExecutor(
            jobs=1, cache_dir=str(tmp_path / "pcache"), shard_plan=True,
            spill_shards=True,
        ) as ex:
            outs = ex.map(self._store_cells(tmp_path))
        assert all(o.ok for o in outs)
        for o in outs:
            rss = o.extra["rss"]
            assert rss["peak_bytes"] >= rss["baseline_bytes"] >= 0
            assert rss["peak_increment_bytes"] >= 0
            assert rss["source"] in ("RssAnon", "VmRSS", "ru_maxrss")
