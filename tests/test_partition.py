"""Tests for all partitioning policies and the generic builder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PartitioningError
from repro.generators import rmat, webcrawl
from repro.graph import from_edges
from repro.partition import (
    POLICIES,
    cvc,
    hvc,
    iec,
    metis_like,
    oec,
    partition,
    partition_stats,
    random_vertex_cut,
)
from repro.partition.base import build_partitions

ALL_POLICIES = sorted(POLICIES)


@pytest.fixture(scope="module")
def g():
    return rmat(9, edge_factor=8, seed=3)


@pytest.fixture(scope="module")
def crawl():
    return webcrawl(2000, 12.0, seed=9)


class TestEveryPolicy:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("parts", [1, 2, 4, 8])
    def test_validates(self, g, policy, parts):
        pg = partition(g, policy, parts, cache=False)
        pg.validate()  # masters unique, edges conserved, exchanges consistent

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_edge_conservation(self, g, policy):
        pg = partition(g, policy, 4, cache=False)
        assert pg.local_edge_counts().sum() == g.num_edges

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_single_partition_trivial(self, g, policy):
        pg = partition(g, policy, 1, cache=False)
        assert pg.replication_factor == pytest.approx(1.0)
        assert pg.parts[0].num_mirrors == 0

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_gather_roundtrip(self, g, policy):
        pg = partition(g, policy, 4, cache=False)
        # label every proxy with its global id; gather must reconstruct ids
        labels = [p.local_to_global.astype(np.int64) for p in pg.parts]
        out = pg.gather_master_labels(labels)
        assert np.array_equal(out, np.arange(g.num_vertices))

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_replication_at_least_one(self, g, policy):
        pg = partition(g, policy, 8, cache=False)
        assert pg.replication_factor >= 1.0


class TestEdgeCuts:
    def test_oec_mirrors_have_no_out_edges(self, g):
        pg = oec(g, 4)
        for p in pg.parts:
            assert not np.any(p.has_out_edges() & ~p.is_master)

    def test_iec_mirrors_have_no_in_edges(self, g):
        pg = iec(g, 4)
        for p in pg.parts:
            assert not np.any(p.has_in_edges() & ~p.is_master)

    def test_oec_edge_balance(self, g):
        s = partition_stats(oec(g, 4))
        assert s.static_balance < 1.5

    def test_iec_edge_balance(self, g):
        s = partition_stats(iec(g, 4))
        assert s.static_balance < 1.5

    def test_oec_edge_with_source_master(self, g):
        pg = oec(g, 4)
        for p in pg.parts:
            src_local = p.graph.edge_sources()
            assert np.all(p.is_master[src_local])

    def test_iec_edge_with_dest_master(self, g):
        pg = iec(g, 4)
        for p in pg.parts:
            assert np.all(p.is_master[p.graph.indices])


class TestCVC:
    def test_grid_shape_8(self, g):
        pg = cvc(g, 8)
        assert pg.grid in [(4, 2), (2, 4)]
        assert pg.grid[0] * pg.grid[1] == 8

    def test_row_invariant(self, g):
        """Proxies with outgoing edges sit in the master's grid row."""
        pg = cvc(g, 8)
        pr, pc = pg.grid
        for p in pg.parts:
            out_v = np.flatnonzero(p.has_out_edges())
            gids = p.local_to_global[out_v]
            master_rows = pg.vertex_owner[gids] // pc
            assert np.all(master_rows == p.pid // pc)

    def test_col_invariant(self, g):
        """Proxies with incoming edges sit in the master's grid column."""
        pg = cvc(g, 8)
        pr, pc = pg.grid
        for p in pg.parts:
            in_v = np.flatnonzero(p.has_in_edges())
            gids = p.local_to_global[in_v]
            master_cols = pg.vertex_owner[gids] % pc
            assert np.all(master_cols == p.pid % pc)

    def test_fewer_partners_than_edge_cut_at_scale(self):
        g = rmat(10, edge_factor=8, seed=1)
        s_cvc = partition_stats(cvc(g, 16))
        s_iec = partition_stats(iec(g, 16))
        assert s_cvc.max_comm_partners < s_iec.max_comm_partners

    def test_explicit_grid(self, g):
        pg = cvc(g, 6, grid=(3, 2))
        assert pg.grid == (3, 2)
        pg.validate()

    def test_bad_grid_rejected(self, g):
        with pytest.raises(ValueError):
            cvc(g, 6, grid=(4, 2))

    def test_grid_position(self, g):
        pg = cvc(g, 8)
        pr, pc = pg.grid
        assert pg.grid_position(0) == (0, 0)
        assert pg.grid_position(pc) == (1, 0)

    def test_grid_position_requires_grid(self, g):
        pg = oec(g, 4)
        with pytest.raises(PartitioningError):
            pg.grid_position(0)


class TestHVC:
    def test_hub_in_edges_spread(self, crawl):
        """High in-degree vertices' in-edges land on many partitions."""
        pg = hvc(crawl, 8)
        hub = int(np.argmax(crawl.in_degrees()))
        holders = set()
        for p in pg.parts:
            l = p.global_to_local[hub]
            if l >= 0 and p.graph.reverse().out_degrees()[l] > 0:
                holders.add(p.pid)
        assert len(holders) >= 4

    def test_low_degree_in_edges_at_master(self, crawl):
        pg = hvc(crawl, 8, threshold=1e9)  # everything "low" => IEC-by-hash
        for p in pg.parts:
            assert np.all(p.is_master[p.graph.indices])


class TestRandomAndMetis:
    def test_random_deterministic(self, g):
        a = random_vertex_cut(g, 4, seed=5)
        b = random_vertex_cut(g, 4, seed=5)
        assert np.array_equal(a.vertex_owner, b.vertex_owner)

    def test_random_every_partition_nonempty(self, g):
        pg = random_vertex_cut(g, 8, seed=0)
        assert all(p.num_masters > 0 for p in pg.parts)

    def test_metis_like_cut_beats_random(self, crawl):
        """Locality ordering must reduce replication vs random placement."""
        r = partition_stats(random_vertex_cut(crawl, 8, seed=0))
        m = partition_stats(metis_like(crawl, 8))
        assert m.replication_factor < r.replication_factor

    def test_metis_like_balanced(self, crawl):
        s = partition_stats(metis_like(crawl, 8))
        assert s.static_balance < 2.0


class TestFrontend:
    def test_unknown_policy(self, g):
        with pytest.raises(ConfigurationError):
            partition(g, "zigzag", 2)

    def test_zero_partitions(self, g):
        with pytest.raises(ConfigurationError):
            partition(g, "oec", 0)

    def test_cache_returns_same_object(self, g):
        a = partition(g, "oec", 2, cache=True)
        b = partition(g, "oec", 2, cache=True)
        assert a is b

    def test_stats_fields(self, g):
        s = partition_stats(partition(g, "cvc", 4, cache=False))
        assert s.num_partitions == 4
        assert len(s.edges_per_partition) == 4
        assert s.static_balance >= 1.0
        assert s.row()[0] == "cvc"


class TestBuilderValidation:
    def test_bad_vertex_owner_shape(self, g):
        with pytest.raises(PartitioningError):
            build_partitions(
                g, np.zeros(3, np.int32), np.zeros(g.num_edges, np.int32), 2, "x"
            )

    def test_bad_edge_owner_range(self, g):
        eo = np.zeros(g.num_edges, np.int32)
        eo[0] = 7
        with pytest.raises(PartitioningError):
            build_partitions(g, np.zeros(g.num_vertices, np.int32), eo, 2, "x")

    def test_empty_partition_allowed(self):
        """A partition owning nothing and holding no edges is legal."""
        g2 = from_edges([0, 1], [1, 0], num_vertices=2)
        pg = build_partitions(
            g2,
            np.zeros(2, np.int32),
            np.zeros(2, np.int32),
            2,
            "manual",
        )
        pg.validate()
        assert pg.parts[1].num_local == 0


class TestMembershipEquivalence:
    """The one-global-sort membership path must reproduce the original
    per-partition ``np.union1d`` scan exactly."""

    @pytest.mark.parametrize("parts", [1, 3, 8])
    def test_vectorized_matches_reference(self, g, parts):
        rng = np.random.default_rng(11)
        vo = rng.integers(0, parts, g.num_vertices).astype(np.int32)
        eo = rng.integers(0, parts, g.num_edges).astype(np.int32)
        fast = build_partitions(g, vo, eo, parts, "manual")
        ref = build_partitions(g, vo, eo, parts, "manual", membership="reference")
        fast.validate()
        np.testing.assert_array_equal(fast.vertex_owner, ref.vertex_owner)
        for pf, pr in zip(fast.parts, ref.parts):
            np.testing.assert_array_equal(pf.local_to_global, pr.local_to_global)
            np.testing.assert_array_equal(pf.global_to_local, pr.global_to_local)
            np.testing.assert_array_equal(pf.is_master, pr.is_master)
            np.testing.assert_array_equal(pf.graph.indptr, pr.graph.indptr)
            np.testing.assert_array_equal(pf.graph.indices, pr.graph.indices)

    def test_unknown_membership_rejected(self, g):
        vo = np.zeros(g.num_vertices, np.int32)
        eo = np.zeros(g.num_edges, np.int32)
        with pytest.raises(PartitioningError, match="membership"):
            build_partitions(g, vo, eo, 1, "manual", membership="eager")
