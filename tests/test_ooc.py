"""Out-of-core pipeline units: mmap/ram bit-identity, blocked streaming
kernels, the study config/gate logic, and the RSS meter.

The headline acceptance run (``bench_regression.py --ooc-only``) proves
the pipeline at scale; this suite pins the individual guarantees it
leans on — most importantly that serving a graph through ``np.memmap``
changes *nothing* observable: every fuzz shape, under both engines,
must produce bit-identical labels and stats whether the store is opened
``ram`` or ``mmap``, and the blocked frontier expansion the workers use
must replay the unblocked elementwise order exactly.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.apps.common import (
    DEFAULT_BLOCK_EDGES,
    block_edge_budget,
    expand_frontier,
    expand_frontier_blocks,
    merge_touched,
)
from repro.comm import CommConfig
from repro.engine import BASPEngine, BSPEngine, RunContext
from repro.fuzz.gen import SHAPES, build_shape
from repro.generators.chunked import build_store
from repro.graph.csr import CSRGraph
from repro.graph.store import open_csr, write_csr_store
from repro.hw import bridges
from repro.partition import partition
from repro.runtime.rss import RssSampler, read_rss_anon
from repro.study.ooc import OocConfig, OocReport, evaluate

ENGINES = {"bsp": BSPEngine, "basp": BASPEngine}


# --------------------------------------------------------------------- #
# mmap vs RAM bit-identity
# --------------------------------------------------------------------- #


def _run(graph: CSRGraph, app_name: str, engine: str):
    app = get_app(app_name)
    degrees = graph.out_degrees()
    ctx = RunContext(
        num_global_vertices=graph.num_vertices,
        source=int(np.argmax(degrees)) if graph.num_vertices else 0,
        k=2,
        global_out_degrees=degrees,
        global_degrees=degrees,
    )
    pg = partition(graph, "iec", 2, cache=False)
    eng = ENGINES[engine](
        pg, bridges(2), app,
        comm_config=CommConfig(update_only=True),
        check_memory=False,
    )
    return eng.run(ctx)


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_mmap_vs_ram_bit_identical(shape, engine, tmp_path):
    """Every fuzz shape, both engines: the storage mode must be invisible."""
    g = build_shape(shape, np.random.default_rng(11))
    path = str(tmp_path / "g.csr")
    write_csr_store(g, path)
    for app_name in ("bfs", "pr"):
        r_ram = _run(open_csr(path, mode="ram"), app_name, engine)
        r_mmap = _run(open_csr(path, mode="mmap"), app_name, engine)
        np.testing.assert_array_equal(
            r_ram.labels, r_mmap.labels, err_msg=f"{app_name} labels"
        )
        assert r_ram.stats.rounds == r_mmap.stats.rounds, app_name
        assert r_ram.stats.num_messages == r_mmap.stats.num_messages
        assert r_ram.stats.work_items == r_mmap.stats.work_items


def test_la_kernel_cell_mmap_matches_ram(tmp_path):
    """One LA-kernel study cell end to end through both storage modes."""
    from repro.runtime.cells import CellSpec, SystemSpec, run_task

    path = str(tmp_path / "la.csr")
    build_store("rmat", 8, path, seed=5)
    outcomes = {}
    for mode in ("ram", "mmap"):
        out = run_task(CellSpec(
            key=(mode,),
            system=SystemSpec.dirgl(policy="iec", execution="sync"),
            benchmark="pr-push",
            dataset=f"store+{mode}:{path}",
            num_gpus=2,
            check_memory=False,
            kernel="la",
        ))
        assert out.ok, out.failure
        outcomes[mode] = out
    assert outcomes["ram"].labels_crc == outcomes["mmap"].labels_crc
    assert outcomes["ram"].stats.rounds == outcomes["mmap"].stats.rounds


# --------------------------------------------------------------------- #
# blocked streaming kernels
# --------------------------------------------------------------------- #


def _frontiers(g: CSRGraph):
    yield np.arange(g.num_vertices, dtype=np.int64)
    yield np.arange(0, g.num_vertices, 2, dtype=np.int64)
    yield np.empty(0, dtype=np.int64)


@pytest.mark.parametrize("budget", [1, 3, 17, None])
def test_expand_frontier_blocks_concatenates_to_unblocked(budget):
    g = build_shape("rmat", np.random.default_rng(3))
    for frontier in _frontiers(g):
        rep, dsts, w = expand_frontier(g, frontier, with_weights=True)
        blocks = list(
            expand_frontier_blocks(g, frontier, with_weights=True,
                                   max_edges=budget)
        )
        if len(frontier) == 0:
            assert blocks == []
            continue
        # block-local rep indexes resolve to the same global sources
        np.testing.assert_array_equal(
            np.concatenate([blk[r] for blk, r, _, _ in blocks]),
            frontier[rep],
        )
        np.testing.assert_array_equal(
            np.concatenate([d for _, _, d, _ in blocks]), dsts
        )
        np.testing.assert_array_equal(
            np.concatenate([bw for _, _, _, bw in blocks]), w
        )
        # frontier slices are contiguous and complete
        np.testing.assert_array_equal(
            np.concatenate([blk for blk, _, _, _ in blocks]), frontier
        )
        if budget is not None:
            for blk, _, d, _ in blocks:
                assert len(d) <= budget or len(blk) == 1


def test_block_edge_budget_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_BLOCK_EDGES", raising=False)
    assert block_edge_budget() == DEFAULT_BLOCK_EDGES
    monkeypatch.setenv("REPRO_BLOCK_EDGES", "4096")
    assert block_edge_budget() == 4096


@pytest.mark.parametrize("app_name", ["bfs", "pr-push"])
def test_blocked_apps_identical_to_default(monkeypatch, app_name):
    """App labels must not depend on the block budget at all."""
    g = build_shape("powerlaw", np.random.default_rng(8))
    monkeypatch.delenv("REPRO_BLOCK_EDGES", raising=False)
    base = _run(g, app_name, "bsp")
    monkeypatch.setenv("REPRO_BLOCK_EDGES", "5")
    blocked = _run(g, app_name, "bsp")
    np.testing.assert_array_equal(base.labels, blocked.labels)
    assert base.stats.rounds == blocked.stats.rounds
    assert base.stats.work_items == blocked.stats.work_items


def test_merge_touched():
    assert merge_touched([]).dtype == np.int64
    assert len(merge_touched([])) == 0
    one = np.array([3, 1, 1])
    assert merge_touched([one]) is one  # single part passes through
    merged = merge_touched([np.array([3, 1]), np.array([2, 3])])
    np.testing.assert_array_equal(merged, [1, 2, 3])


def test_blocked_in_degrees_matches_bincount(monkeypatch):
    g = build_shape("gnm", np.random.default_rng(5))
    ref = np.bincount(np.asarray(g.indices), minlength=g.num_vertices)
    monkeypatch.setattr(CSRGraph, "_SCAN_BLOCK", 3)
    np.testing.assert_array_equal(
        build_shape("gnm", np.random.default_rng(5)).in_degrees(), ref
    )


def test_content_hash_ignores_storage_mode(tmp_path):
    g = build_shape("rmat", np.random.default_rng(2))
    path = str(tmp_path / "g.csr")
    write_csr_store(g, path)
    assert (
        g.content_hash()
        == open_csr(path, "ram").content_hash()
        == open_csr(path, "mmap").content_hash()
    )


# --------------------------------------------------------------------- #
# study config and gate
# --------------------------------------------------------------------- #


def test_ooc_config_scale_sizes_the_store():
    for cap, mult, ef in [(48.0, 4.0, 768.0), (8.0, 4.0, 768.0),
                          (64.0, 2.0, 128.0)]:
        cfg = OocConfig(ram_cap_mb=cap, size_multiple=mult, edge_factor=ef)
        edges = ef * (1 << cfg.scale)
        # 8 bytes/edge of store must reach the multiple; scale is minimal
        assert edges * 8 >= mult * cfg.ram_cap_bytes
        if cfg.scale > 10:
            assert ef * (1 << (cfg.scale - 1)) * 8 < mult * cfg.ram_cap_bytes


def test_ooc_config_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_OOC_RAM_CAP_MB", "12.5")
    monkeypatch.setenv("REPRO_OOC_RSS_TOL", "3")
    cfg = OocConfig.from_env(jobs=4)
    assert cfg.ram_cap_mb == 12.5
    assert cfg.rss_tol == 3.0
    assert cfg.jobs == 4
    assert cfg.wall_tol == OocConfig.wall_tol  # untouched default


def _passing_report() -> OocReport:
    cfg = OocConfig(ram_cap_mb=1.0, size_multiple=2.0)
    return OocReport(
        config=cfg,
        store_bytes=4 * 1024 * 1024,
        cells={
            "bfs": {"ok": True, "failure": "", "rounds": 4,
                    "labels_crc": 111},
            "pr-push": {"ok": True, "failure": "", "rounds": 9,
                        "labels_crc": 222},
        },
        peak_rss_bytes=512 * 1024,
        small_wall={"ram": 1.0, "mmap": 1.1},
    )


def test_evaluate_passes_clean_report():
    assert evaluate(_passing_report()) == []


def test_evaluate_flags_each_violation():
    r = _passing_report()
    r.store_bytes = 1024
    assert any("below the required" in v for v in evaluate(r))

    r = _passing_report()
    r.cells["bfs"] = {"ok": False, "failure": "sim exploded", "rounds": None,
                      "labels_crc": None}
    assert any("sim exploded" in v for v in evaluate(r))

    r = _passing_report()
    r.peak_rss_bytes = 2 * 1024 * 1024
    assert any("exceeds cap" in v for v in evaluate(r))

    r = _passing_report()
    r.small_wall = {"ram": 1.0, "mmap": 2.0}
    assert any("mmap wall" in v for v in evaluate(r))


def test_evaluate_compares_deterministic_baseline():
    r = _passing_report()
    base = {"cells": {
        "bfs": {"rounds": 4, "labels_crc": 111},
        "pr-push": {"rounds": 9, "labels_crc": 999},
    }}
    vs = evaluate(r, baseline=base)
    assert len(vs) == 1 and "labels_crc" in vs[0]
    base["cells"].pop("bfs")
    base["cells"]["pr-push"]["labels_crc"] = 222
    assert any("no entry for bfs" in v for v in evaluate(r, baseline=base))


# --------------------------------------------------------------------- #
# RSS meter
# --------------------------------------------------------------------- #


def test_read_rss_anon():
    rss, source = read_rss_anon()
    assert rss > 0
    assert source in ("RssAnon", "VmRSS", "ru_maxrss")


def test_rss_sampler_sees_a_large_allocation():
    import mmap

    # A raw PRIVATE anonymous map, not np.ones: after earlier tests have
    # grown the heap, malloc can hand back already-resident freed pages
    # and RssAnon would not move — and mmap's MAP_SHARED default counts
    # as RssShmem, not RssAnon.  Fresh private pages always fault in new.
    with RssSampler(interval=0.002) as s:
        block = mmap.mmap(
            -1, 32 * 1024 * 1024,
            flags=mmap.MAP_PRIVATE | mmap.MAP_ANONYMOUS,
        )
        block.write(b"\x01" * len(block))  # touch every page
        s.sample_now()
        block.close()
    r = s.result
    assert r is not None
    assert r.samples >= 2
    assert r.peak >= r.baseline
    assert r.peak_increment >= 16 * 1024 * 1024
    assert r.source in ("RssAnon", "VmRSS", "ru_maxrss")
