"""End-to-end property tests: on *arbitrary* random graphs, the distributed
engines must match the single-machine references for every policy and both
execution models.  This is the strongest correctness statement in the suite
— partitioning, proxy sync, invariant filtering, and async scheduling
compose to exact answers on graphs hypothesis dreams up.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import get_app
from repro.engine import BASPEngine, BSPEngine, RunContext
from repro.graph import from_edges
from repro.graph.transform import add_random_weights, make_undirected
from repro.hw import uniform_cluster
from repro.partition import POLICIES, partition
from repro.validation import reference_bfs, reference_cc, reference_sssp

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_policy_parts(draw):
    n = draw(st.integers(min_value=4, max_value=80))
    m = draw(st.integers(min_value=n, max_value=6 * n))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    g = add_random_weights(from_edges(src, dst, num_vertices=n), seed=1)
    policy = draw(st.sampled_from(sorted(POLICIES)))
    parts = draw(st.sampled_from([2, 3, 4, 8]))
    return g, policy, parts


def ctx_for(g):
    return RunContext(
        num_global_vertices=g.num_vertices,
        source=int(np.argmax(g.out_degrees())),
        global_out_degrees=g.out_degrees(),
    )


@given(gpp=graph_policy_parts(), engine=st.sampled_from(["bsp", "basp"]))
@SETTINGS
def test_bfs_matches_reference_everywhere(gpp, engine):
    g, policy, parts = gpp
    pg = partition(g, policy, parts, cache=False)
    cls = BSPEngine if engine == "bsp" else BASPEngine
    eng = cls(pg, uniform_cluster(parts), get_app("bfs"), check_memory=False)
    res = eng.run(ctx_for(g))
    ref = reference_bfs(g, int(np.argmax(g.out_degrees())))
    assert np.array_equal(res.labels, ref)


@given(gpp=graph_policy_parts())
@SETTINGS
def test_sssp_matches_reference_everywhere(gpp):
    g, policy, parts = gpp
    pg = partition(g, policy, parts, cache=False)
    eng = BSPEngine(
        pg, uniform_cluster(parts), get_app("sssp"), check_memory=False
    )
    res = eng.run(ctx_for(g))
    ref = reference_sssp(g, int(np.argmax(g.out_degrees())))
    assert np.array_equal(res.labels, ref)


@given(gpp=graph_policy_parts(), engine=st.sampled_from(["bsp", "basp"]))
@SETTINGS
def test_cc_matches_reference_everywhere(gpp, engine):
    g, policy, parts = gpp
    sym = make_undirected(g)
    pg = partition(sym, policy, parts, cache=False)
    cls = BSPEngine if engine == "bsp" else BASPEngine
    eng = cls(pg, uniform_cluster(parts), get_app("cc"), check_memory=False)
    res = eng.run(ctx_for(sym))
    assert np.array_equal(res.labels, reference_cc(sym))


@given(
    gpp=graph_policy_parts(),
    throttle=st.sampled_from([0.0, 1e-3, 1e-2]),
)
@SETTINGS
def test_throttled_async_still_exact(gpp, throttle):
    """The async throttle changes scheduling, never answers."""
    g, policy, parts = gpp
    pg = partition(g, policy, parts, cache=False)
    eng = BASPEngine(
        pg, uniform_cluster(parts), get_app("bfs"),
        check_memory=False, throttle_wait=throttle,
    )
    res = eng.run(ctx_for(g))
    ref = reference_bfs(g, int(np.argmax(g.out_degrees())))
    assert np.array_equal(res.labels, ref)
