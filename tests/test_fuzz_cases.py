"""Replay every committed fuzz case under ``tests/cases/``.

Each JSON file is a shrunk reproducer of a bug the fuzzer once found.
Replaying it at FULL check level must now succeed — or, for bugs whose
fix was to *forbid* the configuration (e.g. bfs-do under BASP), must be
refused with the documented configuration error rather than produce a
wrong answer.  Dropping a file from this directory silently removes a
regression guard; the suite fails if the directory is empty.
"""

import glob
import os

import pytest

from repro.errors import ConfigurationError, InvariantViolation, ReproError
from repro.fuzz.cases import Case, CaseFailure, run_case

CASE_DIR = os.path.join(os.path.dirname(__file__), "cases")
CASE_FILES = sorted(glob.glob(os.path.join(CASE_DIR, "*.json")))


def test_case_directory_is_not_empty():
    assert CASE_FILES, "tests/cases/ lost its regression reproducers"


@pytest.mark.parametrize(
    "path", CASE_FILES, ids=[os.path.basename(p) for p in CASE_FILES]
)
def test_replay_committed_case(path):
    case = Case.load(path)
    try:
        labels = run_case(case, check="full")
    except (InvariantViolation, CaseFailure):
        raise  # the original bug is back
    except ConfigurationError:
        # acceptable only when the fix outlawed the configuration —
        # the app must genuinely refuse this engine now
        from repro.apps import get_app

        assert case.engine == "basp" and not get_app(case.app).async_capable
        return
    except ReproError as e:  # pragma: no cover - any other refusal is a bug
        pytest.fail(f"{os.path.basename(path)} refused unexpectedly: {e}")
    if case.fault_plan:
        assert labels is None  # the scheduled crash must still fire
    else:
        assert labels is not None
