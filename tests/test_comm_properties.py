"""Property-based tests for the synchronization substrate.

The oracle: apply an arbitrary sequence of writes at writable proxies,
run one BSP sync, and compare the master values against combining the same
writes directly with the reduction operator on a flat global array.  Any
divergence means the exchange lists, invariant filtering, or dirty-bit
machinery lost or duplicated a write.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.comm import CommConfig, FieldSpec, GluonComm
from repro.constants import INF
from repro.graph import from_edges
from repro.partition import POLICIES, partition

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def scenario(draw):
    n = draw(st.integers(6, 50))
    m = draw(st.integers(n, 4 * n))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    g = from_edges(src, dst, num_vertices=n)
    policy = draw(st.sampled_from(sorted(POLICIES)))
    parts = draw(st.sampled_from([2, 3, 4]))
    # (vertex, value) writes; applied at every writable proxy of the vertex
    writes = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, 1000)),
            min_size=0, max_size=30,
        )
    )
    update_only = draw(st.booleans())
    return g, policy, parts, writes, update_only


@given(s=scenario())
@SETTINGS
def test_min_sync_equals_direct_combination(s):
    g, policy, parts, writes, update_only = s
    pg = partition(g, policy, parts, cache=False)
    spec = FieldSpec(name="x", dtype=np.uint32, reduce_op="min",
                     read_at="src", write_at="dst", identity=INF)
    comm = GluonComm(pg, [spec], CommConfig(update_only=update_only))
    labels = [np.full(p.num_local, INF, dtype=np.uint32) for p in pg.parts]

    oracle = np.full(g.num_vertices, INF, dtype=np.uint32)
    for v, val in writes:
        oracle[v] = min(oracle[v], val)
        for p in pg.parts:
            l = p.global_to_local[v]
            # a write lands wherever a dst-write could happen: proxies with
            # local in-edges, and always at the master
            if l >= 0 and (p.has_in_edges()[l] or p.is_master[l]):
                if val < labels[p.pid][l]:
                    labels[p.pid][l] = val
                    comm.mark_updated("x", p.pid, [l])

    comm.bsp_sync("x", labels)
    got = pg.gather_master_labels(labels)
    assert np.array_equal(got, oracle)


@given(s=scenario())
@SETTINGS
def test_add_sync_accumulates_exactly(s):
    """Accumulator semantics: every delta reaches the master exactly once."""
    g, policy, parts, writes, update_only = s
    pg = partition(g, policy, parts, cache=False)
    spec = FieldSpec(name="acc", dtype=np.int64, reduce_op="add",
                     read_at="none", write_at="dst", identity=0,
                     reset_after_reduce=True)
    comm = GluonComm(pg, [spec], CommConfig(update_only=update_only))
    labels = [np.zeros(p.num_local, dtype=np.int64) for p in pg.parts]

    oracle = np.zeros(g.num_vertices, dtype=np.int64)
    for v, val in writes:
        # write the delta at exactly one writable proxy (round-robin pick)
        holders = [
            p.pid for p in pg.parts
            if p.global_to_local[v] >= 0
            and (p.has_in_edges()[p.global_to_local[v]]
                 or p.is_master[p.global_to_local[v]])
        ]
        if not holders:
            continue
        pid = holders[val % len(holders)]
        l = pg.parts[pid].global_to_local[v]
        labels[pid][l] += val
        comm.mark_updated("acc", pid, [l])
        oracle[v] += val

    comm.bsp_sync("acc", labels)
    got = pg.gather_master_labels(labels)
    assert np.array_equal(got, oracle)


@given(s=scenario())
@SETTINGS
def test_second_sync_moves_nothing_under_uo(s):
    """After one sync, a second sync with no new writes is silent (UO)."""
    g, policy, parts, writes, _ = s
    pg = partition(g, policy, parts, cache=False)
    spec = FieldSpec(name="x", dtype=np.uint32, reduce_op="min",
                     read_at="src", write_at="dst", identity=INF)
    comm = GluonComm(pg, [spec], CommConfig(update_only=True))
    labels = [np.full(p.num_local, INF, dtype=np.uint32) for p in pg.parts]
    for v, val in writes:
        for p in pg.parts:
            l = p.global_to_local[v]
            if l >= 0 and (p.has_in_edges()[l] or p.is_master[l]):
                if val < labels[p.pid][l]:
                    labels[p.pid][l] = val
                    comm.mark_updated("x", p.pid, [l])
    comm.bsp_sync("x", labels)
    msgs, changed = comm.bsp_sync("x", labels)
    assert msgs == []
    assert all(len(c) == 0 for c in changed)
