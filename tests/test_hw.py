"""Tests for the hardware model: GPUs, clusters, interconnects, memory."""

import numpy as np
import pytest

from repro.constants import GIB
from repro.errors import ConfigurationError, SimulatedOOMError
from repro.hw import (
    Cluster,
    GTX1080,
    K80,
    OMNIPATH,
    P100,
    PCIE3_X16,
    MemoryModel,
    bridges,
    tuxedo,
    uniform_cluster,
)
from repro.hw.interconnect import transfer_time
from repro.hw.memory import (
    DIRGL_PROFILE,
    GROUTE_PROFILE,
    GUNROCK_PROFILE,
    LUX_PROFILE,
)


class TestGPUSpecs:
    def test_p100_capacity(self):
        assert P100.mem_capacity_bytes == 16 * GIB

    def test_effective_bandwidth_below_peak(self):
        for gpu in (P100, K80, GTX1080):
            assert gpu.effective_bandwidth < gpu.mem_bandwidth_bytes

    def test_seconds_for_bytes_monotone(self):
        assert P100.seconds_for_bytes(2e9) > P100.seconds_for_bytes(1e9)

    def test_p100_faster_than_k80(self):
        assert P100.seconds_for_bytes(1e9) < K80.seconds_for_bytes(1e9)

    def test_concurrent_blocks(self):
        assert P100.concurrent_blocks == 56 * P100.blocks_per_sm


class TestClusters:
    def test_bridges_two_gpus_per_host(self):
        c = bridges(8)
        assert c.num_gpus == 8
        assert c.num_hosts == 4
        assert c.same_host(0, 1)
        assert not c.same_host(1, 2)

    def test_bridges_odd_gpu_count(self):
        c = bridges(3)
        assert c.num_hosts == 2

    def test_bridges_limits(self):
        with pytest.raises(ConfigurationError):
            bridges(65)
        with pytest.raises(ConfigurationError):
            bridges(0)

    def test_tuxedo_heterogeneous(self):
        c = tuxedo(6)
        assert [g.name for g in c.gpus] == ["K80"] * 4 + ["GTX1080"] * 2
        assert c.num_hosts == 1
        assert all(c.same_host(0, i) for i in range(6))

    def test_tuxedo_scaling_order(self):
        assert [g.name for g in tuxedo(2).gpus] == ["K80", "K80"]

    def test_tuxedo_limit(self):
        with pytest.raises(ConfigurationError):
            tuxedo(7)

    def test_uniform_cluster(self):
        c = uniform_cluster(16, gpus_per_host=4)
        assert c.num_hosts == 4
        assert c.gpus_on_host(0) == [0, 1, 2, 3]

    def test_min_gpu_memory(self):
        assert tuxedo(6).min_gpu_memory() == GTX1080.mem_capacity_bytes

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster("bad", (P100,), (0, 1), (tuxedo(1).hosts[0],))


class TestInterconnect:
    def test_latency_floor(self):
        assert OMNIPATH.time(0) == OMNIPATH.latency_s

    def test_bandwidth_dominates_large(self):
        t = OMNIPATH.time(1e9)
        assert t == pytest.approx(1e9 / OMNIPATH.bandwidth_bytes, rel=0.01)

    def test_per_message_latency(self):
        one = transfer_time(OMNIPATH, 1e6, num_messages=1)
        many = transfer_time(OMNIPATH, 1e6, num_messages=100)
        assert many - one == pytest.approx(99 * OMNIPATH.latency_s)

    def test_zero_messages_free(self):
        assert transfer_time(PCIE3_X16, 0, num_messages=0) == 0.0


class TestMemoryModel:
    def test_scale_factor_scales(self):
        m1 = MemoryModel(DIRGL_PROFILE, scale_factor=1.0)
        m2 = MemoryModel(DIRGL_PROFILE, scale_factor=10.0)
        b1 = m1.partition_bytes(100_000, 10_000_000)
        b2 = m2.partition_bytes(100_000, 10_000_000)
        assert b2 > 5 * b1

    def test_oom_raised(self):
        c = bridges(2)
        m = MemoryModel(DIRGL_PROFILE, scale_factor=1e6)
        with pytest.raises(SimulatedOOMError) as ei:
            m.usage(c, [1000, 1000], [100000, 100000])
        assert ei.value.gpu_index in (0, 1)
        assert ei.value.required_bytes > ei.value.capacity_bytes

    def test_no_check_returns_usage(self):
        c = bridges(2)
        m = MemoryModel(DIRGL_PROFILE, scale_factor=1e6)
        u = m.usage(c, [1000, 1000], [100000, 100000], check=False)
        assert u.max_gb > 16

    def test_lux_static_allocation_floor(self):
        m = MemoryModel(LUX_PROFILE, scale_factor=1.0)
        tiny = m.partition_bytes(10, 100)
        assert tiny == pytest.approx(5.85 * GIB)

    def test_lux_oom_when_exceeding_static_pool(self):
        c = bridges(2)
        m = MemoryModel(LUX_PROFILE, scale_factor=5e4)
        with pytest.raises(SimulatedOOMError):
            m.usage(c, [10000, 10000], [500000, 500000])

    def test_dirgl_smallest_footprint(self):
        """Table III ordering: D-IrGL < Groute < Gunrock, Lux static."""
        args = (50_000, 2_000_000)
        d = MemoryModel(DIRGL_PROFILE).partition_bytes(*args)
        g = MemoryModel(GROUTE_PROFILE).partition_bytes(*args)
        k = MemoryModel(GUNROCK_PROFILE).partition_bytes(*args)
        assert d < g < k

    def test_balance_ratio(self):
        c = bridges(2)
        m = MemoryModel(DIRGL_PROFILE)
        u = m.usage(c, [1000, 1000], [10000, 30000])
        assert u.balance_ratio > 1.0

    def test_wrong_partition_count(self):
        with pytest.raises(ValueError):
            MemoryModel(DIRGL_PROFILE).usage(bridges(4), [1, 2], [3, 4])
