"""Tests for run statistics and breakdown extraction."""

import numpy as np
import pytest

from repro.constants import GIB
from repro.metrics import Breakdown, RoundRecord, RunStats, breakdown_row


def record(P=4, compute=1.0, wait=0.5, dev=0.2, dur=2.0, **kw):
    defaults = dict(
        round_index=0, active_vertices=10, edges_processed=100,
        messages=3, comm_bytes=1e6,
        compute_times=np.full(P, compute),
        wait_times=np.full(P, wait),
        device_comm_times=np.full(P, dev),
        duration=dur,
    )
    defaults.update(kw)
    return RoundRecord(**defaults)


class TestRunStats:
    def test_accumulation(self):
        s = RunStats()
        s.accumulate_round(record())
        s.accumulate_round(record())
        assert s.rounds == 2
        assert s.execution_time == 4.0
        assert s.work_items == 200
        assert s.num_messages == 6

    def test_breakdown_is_residual(self):
        s = RunStats()
        s.accumulate_round(record())
        s.finalize_breakdown()
        assert s.max_compute == 1.0
        assert s.min_wait == 0.5
        assert s.device_comm == pytest.approx(2.0 - 1.0 - 0.5)

    def test_residual_clamped_non_negative(self):
        s = RunStats()
        s.accumulate_round(record(compute=5.0, dur=1.0))
        s.finalize_breakdown()
        assert s.device_comm == 0.0

    def test_dynamic_balance(self):
        s = RunStats()
        s.accumulate_round(
            record(compute_times=np.array([1.0, 1.0, 1.0, 5.0]))
        )
        assert s.dynamic_balance == pytest.approx(5.0 / 2.0)

    def test_dynamic_balance_empty(self):
        assert RunStats().dynamic_balance == 1.0

    def test_memory_balance(self):
        s = RunStats(memory_max_bytes=4 * GIB, memory_mean_bytes=2 * GIB)
        assert s.memory_balance == 2.0
        assert s.memory_max_gb == 4.0

    def test_comm_volume_gb(self):
        s = RunStats(comm_volume_bytes=GIB)
        assert s.comm_volume_gb == 1.0

    def test_summary_string(self):
        s = RunStats(benchmark="bfs", dataset="x", policy="cvc",
                     variant="v", num_gpus=4)
        s.accumulate_round(record())
        s.finalize_breakdown()
        assert "bfs/x" in s.summary()
        assert "x4" in s.summary()


class TestBreakdown:
    def test_row_and_total(self):
        s = RunStats(benchmark="bfs")
        s.accumulate_round(record())
        s.finalize_breakdown()
        bar = breakdown_row("lbl", s)
        assert bar.label == "lbl"
        assert bar.total == pytest.approx(s.execution_time)
        assert bar.row()[0] == "lbl"

    def test_direct_construction(self):
        b = Breakdown("x", 1.0, 0.5, 0.25, 3.0)
        assert b.total == 1.75
        assert len(b.row()) == 6
