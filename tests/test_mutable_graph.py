"""MutableGraph: timestamped batches, snapshots, and hash freshness."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.generators import rmat
from repro.graph import EdgeBatch, MutableGraph, from_edges
from repro.graph.mutable import derived_weights
from repro.graph.transform import add_random_weights


def tri(weighted=False):
    w = np.array([3, 5, 2], dtype=np.uint32) if weighted else None
    return from_edges([0, 1, 2], [1, 2, 0], num_vertices=4, weights=w)


class TestApply:
    def test_insert_appends_edges(self):
        mg = MutableGraph(tri())
        mg.insert_edges([0, 3], [3, 0], timestamp=1)
        assert mg.num_edges == 5
        assert mg.version == 1
        snap = mg.snapshot()
        assert snap.num_edges == 5
        assert snap.num_vertices == 4

    def test_delete_removes_all_occurrences(self):
        g = from_edges([0, 0, 1], [1, 1, 2], num_vertices=3)
        mg = MutableGraph(g)
        mg.delete_edges([0], [1], timestamp=1)
        assert mg.num_edges == 1  # both parallel (0,1) copies die

    def test_delete_of_absent_pair_is_noop(self):
        mg = MutableGraph(tri())
        mg.delete_edges([3], [2], timestamp=1)
        assert mg.num_edges == 3

    def test_deletes_apply_before_inserts_within_a_batch(self):
        mg = MutableGraph(tri())
        mg.apply(EdgeBatch(
            timestamp=1,
            insert_src=np.array([0]), insert_dst=np.array([1]),
            delete_src=np.array([0]), delete_dst=np.array([1]),
        ))
        # the old (0,1) died, the new one landed: net count unchanged
        assert mg.num_edges == 3
        src, dst = mg.edge_list()
        assert ((src == 0) & (dst == 1)).sum() == 1

    def test_out_of_range_endpoint_rejected(self):
        mg = MutableGraph(tri())
        with pytest.raises(GraphFormatError):
            mg.insert_edges([0], [4], timestamp=1)
        with pytest.raises(GraphFormatError):
            mg.delete_edges([-1], [0], timestamp=1)

    def test_timestamps_must_be_monotone(self):
        mg = MutableGraph(tri())
        mg.insert_edges([0], [3], timestamp=5)
        with pytest.raises(GraphFormatError):
            mg.insert_edges([1], [3], timestamp=4)

    def test_log_and_batches_since(self):
        mg = MutableGraph(tri())
        mg.insert_edges([0], [3], timestamp=1)
        mg.delete_edges([0], [1], timestamp=2)
        assert len(mg.log) == 2
        assert len(mg.batches_since(1)) == 1
        assert np.array_equal(mg.touched_since(0), [0, 1, 3])


class TestWeights:
    def test_derived_weights_deterministic_and_bounded(self):
        s = np.array([1, 2, 3], dtype=np.int64)
        d = np.array([4, 5, 6], dtype=np.int64)
        w1 = derived_weights(s, d, 7)
        w2 = derived_weights(s, d, 7)
        assert np.array_equal(w1, w2)
        assert (w1 >= 1).all()
        w3 = derived_weights(s, d, 8)
        assert not np.array_equal(w1, w3)  # timestamp feeds the mix

    def test_insert_preserves_weight_dtype(self):
        base = add_random_weights(rmat(4, edge_factor=2, seed=1), seed=1)
        mg = MutableGraph(base)
        mg.insert_edges([0], [1], timestamp=1)
        assert mg.snapshot().weights.dtype == base.weights.dtype

    def test_explicit_insert_weights(self):
        mg = MutableGraph(tri(weighted=True))
        mg.insert_edges([3], [0], weights=[9], timestamp=1)
        snap = mg.snapshot()
        src = snap.edge_sources()
        w = snap.weights[(src == 3) & (snap.indices == 0)]
        assert list(w) == [9]


class TestSnapshotAndHash:
    def test_snapshot_is_canonical(self):
        # two histories reaching the same edge multiset hash identically
        a = MutableGraph(tri())
        a.insert_edges([3, 2], [0, 3], timestamp=1)
        b = MutableGraph(tri())
        b.insert_edges([2], [3], timestamp=1)
        b.insert_edges([3], [0], timestamp=2)
        assert a.content_hash() == b.content_hash()

    def test_snapshot_cached_per_version(self):
        mg = MutableGraph(tri())
        assert mg.snapshot() is mg.snapshot()
        mg.insert_edges([0], [3], timestamp=1)
        assert mg.snapshot() is mg.snapshot()

    def test_content_hash_tracks_mutations(self):
        """Satellite regression: the hash must incorporate the pending
        mutation log — a mutated graph can never reuse its old key."""
        mg = MutableGraph(tri())
        h0 = mg.content_hash()
        assert h0 == mg.base.content_hash()  # clean wrapper is transparent
        mg.insert_edges([0], [3], timestamp=1)
        h1 = mg.content_hash()
        assert h1 != h0
        mg.delete_edges([0], [3], timestamp=2)
        # back to the original edge multiset -> back to the original key
        assert mg.content_hash() == h0

    def test_mutated_graph_yields_fresh_labels_not_cached_ones(self):
        """End-to-end staleness regression: query, mutate, re-query —
        the second answer must reflect the mutation, even with every
        content-keyed cache warm."""
        from repro.validation import reference_bfs

        g = from_edges([0, 1], [1, 2], num_vertices=4)
        mg = MutableGraph(g)
        results = {}

        def query():
            # a content-keyed result cache, as the serve layer keeps one
            key = mg.content_hash()
            if key not in results:
                results[key] = reference_bfs(mg.snapshot(), 0)
            return results[key]

        before = query()
        assert before[3] == np.iinfo(np.uint32).max  # unreachable
        mg.insert_edges([2], [3], timestamp=1)
        after = query()
        assert after[3] == 3  # fresh labels, not the stale cache entry
        assert len(results) == 2
