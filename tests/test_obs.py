"""Tests for the ``repro.obs`` tracing/observability layer: the tracer
and counter primitives, the Chrome-trace/CSV exporters, the ambient
tracer plumbing through engines and ``run_task``, and — crucially — the
equivalence guarantee that tracing never changes simulated results."""

import io
import json
import os
import threading

import numpy as np
import pytest

from repro import obs
from repro.frameworks.dirgl import DIrGL
from repro.generators.datasets import load_dataset
from repro.obs import (
    NULL_TRACER,
    CounterRegistry,
    Tracer,
    read_trace,
    summarize_trace,
    to_chrome,
    write_chrome,
    write_csv,
)
from repro.obs.cli import main as trace_cli_main
from repro.obs.cli import summarize_files
from repro.partition.cache import CacheStats
from repro.runtime.cells import CellSpec, SystemSpec, run_task


@pytest.fixture(autouse=True)
def clean_obs_state():
    """No test may leak an ambient tracer or trace directory."""
    yield
    obs.set_tracer(None)
    obs.configure(None)


def _cell(key, bench="bfs", system=None, **kw):
    return CellSpec(
        key=key,
        system=system or SystemSpec.dirgl(policy="iec", execution="sync"),
        benchmark=bench,
        dataset="tiny-s",
        num_gpus=2,
        check_memory=False,
        **kw,
    )


class TestTracer:
    def test_span_records_duration_and_args(self):
        tr = Tracer()
        ev = tr.begin("compute", "compute", tid=2, args={"round": 0})
        tr.end(ev, edges=10)
        (rec,) = tr.events()
        assert rec["ph"] == "X"
        assert rec["tid"] == 2
        assert rec["dur"] >= 0
        assert rec["args"] == {"round": 0, "edges": 10}

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        assert tr.begin("a", "b") is None
        tr.end(None)  # must be a silent no-op
        tr.instant("i", "c")
        tr.count("n")
        tr.thread_name(0, "lane")
        with tr.span("s", "c"):
            pass
        assert len(tr) == 0
        assert len(tr.counters) == 0
        assert tr.thread_names() == {}

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled
        assert len(NULL_TRACER) == 0

    def test_span_contextmanager(self):
        tr = Tracer()
        with tr.span("build", "cache", args={"policy": "iec"}):
            pass
        (rec,) = tr.events()
        assert rec["name"] == "build" and rec["args"]["policy"] == "iec"

    def test_instant_is_thread_scoped(self):
        tr = Tracer()
        tr.instant("round_sim", "round", tid=1, args={"round": 3})
        (rec,) = tr.events()
        assert rec["ph"] == "i" and rec["s"] == "t" and rec["tid"] == 1

    def test_thread_safety(self):
        tr = Tracer()

        def work(tid):
            for _ in range(200):
                ev = tr.begin("s", "c", tid=tid)
                tr.end(ev)
                tr.count("n")

        threads = [threading.Thread(target=work, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr) == 8 * 200
        assert tr.counters.get("n") == 8 * 200


class TestCounterRegistry:
    def test_add_set_get(self):
        c = CounterRegistry()
        c.add("msgs")
        c.add("msgs", 2)
        c.set("bytes", 64)
        assert c.get("msgs") == 3
        assert c.get("bytes") == 64
        assert c.get("missing", -1) == -1
        assert "msgs" in c and "missing" not in c
        assert len(c) == 2

    def test_update_with_prefix_accumulates(self):
        c = CounterRegistry()
        c.update({"rounds": 5}, prefix="engine.")
        c.update({"rounds": 2}, prefix="engine.")
        assert c.as_dict() == {"engine.rounds": 7}

    def test_merge_cache_stats(self):
        c = CounterRegistry()
        c.merge_cache_stats(CacheStats(memory_hits=3, disk_hits=1, builds=2, stores=2))
        d = c.as_dict()
        assert d["partition.cache.memory_hits"] == 3
        assert d["partition.cache.builds"] == 2


class TestAmbientTracer:
    def test_default_is_off(self):
        assert obs.current_tracer() is None
        assert obs.active_trace_dir() is None

    def test_set_tracer_returns_previous_and_normalizes_disabled(self):
        t = Tracer()
        assert obs.set_tracer(t) is None
        assert obs.current_tracer() is t
        obs.set_tracer(Tracer(enabled=False))
        assert obs.current_tracer() is None  # disabled means off

    def test_use_tracer_restores(self):
        outer = Tracer()
        obs.set_tracer(outer)
        with obs.use_tracer(Tracer()) as inner:
            assert obs.current_tracer() is inner
        assert obs.current_tracer() is outer

    def test_configure_creates_directory(self, tmp_path):
        target = tmp_path / "a" / "traces"
        obs.configure(trace_dir=target)
        assert os.path.isdir(target)
        assert obs.active_trace_dir() == str(target)
        obs.configure(None)
        assert obs.active_trace_dir() is None


def _demo_tracer() -> Tracer:
    """A small hand-built trace with every event kind the stack emits."""
    tr = Tracer(pid=7)
    tr.thread_name(0, "partition 0")
    tr.thread_name(1, "engine")
    ev = tr.begin("compute", "compute", tid=0, args={"round": 0})
    tr.end(ev, edges=10)
    tr.instant(
        "round_sim",
        "round",
        tid=1,
        args={
            "round": 0,
            "compute_s": [0.5, 0.25],
            "wait_s": [0.0, 0.25],
            "device_s": [0.1, 0.1],
        },
    )
    tr.instant(
        "run_summary",
        "engine",
        tid=1,
        args={
            "execution_time": 1.0,
            "max_compute": 0.5,
            "min_wait": 0.0,
            "device_comm": 0.2,
            "rounds": 1,
            "num_messages": 3,
            "comm_volume_bytes": 24,
        },
    )
    tr.count("comm.reduce.rank.messages", 3)
    return tr


class TestExport:
    def test_to_chrome_shape(self):
        doc = to_chrome(_demo_tracer(), process_name="demo")
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"]["name"] == "demo"
        lanes = {e["tid"]: e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert lanes == {0: "partition 0", 1: "engine"}
        counters = [e for e in events if e["ph"] == "C"]
        assert counters[0]["name"] == "comm.reduce.rank.messages"
        assert counters[0]["args"]["value"] == 3
        assert all(e["pid"] == 7 for e in events)

    def test_write_chrome_read_trace_round_trip(self, tmp_path):
        path = tmp_path / "demo.trace.json"
        assert write_chrome(_demo_tracer(), path) == str(path)
        assert not os.path.exists(f"{path}.tmp")  # atomic rename cleaned up
        events = read_trace(path)
        assert {e["ph"] for e in events} == {"M", "X", "i", "C"}
        # the file is plain JSON, loadable by Perfetto / chrome://tracing
        with open(path) as f:
            assert "traceEvents" in json.load(f)

    def test_read_trace_bare_array_form(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([{"ph": "X", "name": "s"}]))
        assert read_trace(path) == [{"ph": "X", "name": "s"}]

    def test_write_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        text = write_csv(_demo_tracer(), path)
        assert path.read_text() == text
        lines = text.splitlines()
        assert lines[0] == "ph,name,cat,pid,tid,ts_us,dur_us,args"
        assert any(line.startswith("X,compute") for line in lines)
        assert any(line.startswith("C,comm.reduce.rank.messages") for line in lines)

    def test_summarize_trace(self):
        summary = summarize_trace(to_chrome(_demo_tracer())["traceEvents"])
        assert summary["run_summary"]["rounds"] == 1
        assert summary["run_summary"]["execution_time"] == 1.0
        assert summary["per_partition_sim"]["compute_s"] == [0.5, 0.25]
        assert summary["span_counts"]["compute"] == 1
        assert summary["counters"]["comm.reduce.rank.messages"] == 3
        assert summary["wall_us_by_cat"]["compute"] >= 0


class TestEngineTracing:
    """The acceptance path: a 4-GPU BSP pagerank cell traced end to end."""

    @pytest.fixture(scope="class")
    def traced_pr(self):
        ds = load_dataset("tiny-s")
        tracer = Tracer()
        with obs.use_tracer(tracer):
            res = DIrGL(policy="iec", execution="sync").run(
                "pr", ds, 4, check_memory=False
            )
        return tracer, res

    def test_compute_spans_cover_every_round_and_partition(self, traced_pr):
        tracer, res = traced_pr
        compute = [e for e in tracer.events() if e["name"] == "compute"]
        pairs = {(e["args"]["round"], e["tid"]) for e in compute}
        # pagerank keeps every partition active every round, so the trace
        # must hold one compute span per (round, partition) pair
        assert pairs == {
            (r, p) for r in range(res.stats.rounds) for p in range(4)
        }
        assert len(compute) == 4 * res.stats.rounds

    def test_sync_spans_and_engine_lane(self, traced_pr):
        tracer, res = traced_pr
        cats = {e["cat"] for e in tracer.events() if e["ph"] == "X"}
        assert {"compute", "sync", "round", "engine"} <= cats
        lanes = tracer.thread_names()
        assert lanes[4] == "engine"
        assert lanes[0].startswith("partition")

    def test_run_summary_matches_stats(self, traced_pr):
        tracer, res = traced_pr
        summary = summarize_trace(to_chrome(tracer)["traceEvents"])
        run = summary["run_summary"]
        assert run["rounds"] == res.stats.rounds
        assert run["execution_time"] == res.stats.execution_time
        assert run["num_messages"] == res.stats.num_messages
        assert run["comm_volume_bytes"] == res.stats.comm_volume_bytes
        # GluonComm recorded per-field message/byte counters
        assert any(k.startswith("comm.") for k in summary["counters"])

    @pytest.mark.parametrize("execution", ["sync", "async"])
    def test_tracing_does_not_change_results(self, execution):
        ds = load_dataset("tiny-s")

        def go(tracer):
            fw = DIrGL(policy="iec", execution=execution)
            if tracer is None:
                return fw.run("pr", ds, 4, check_memory=False)
            with obs.use_tracer(tracer):
                return fw.run("pr", ds, 4, check_memory=False)

        base = go(None)
        for res in (go(Tracer()), go(Tracer(enabled=False))):
            assert res.stats.execution_time == base.stats.execution_time
            assert res.stats.rounds == base.stats.rounds
            assert res.stats.num_messages == base.stats.num_messages
            assert res.stats.comm_volume_bytes == base.stats.comm_volume_bytes
            assert np.array_equal(res.labels, base.labels)


class TestRunTaskTracing:
    def test_run_task_exports_per_cell_trace(self, tmp_path):
        obs.configure(trace_dir=tmp_path)
        out = run_task(_cell(("fig", "x", 2)))
        assert out.ok
        path = out.extra["trace_path"]
        assert os.path.basename(path) == "fig-x-2.trace.json"
        summary = summarize_trace(read_trace(path))
        assert summary["cell"]["key"] == str(("fig", "x", 2))
        assert summary["cell"]["ok"] is True
        assert summary["run_summary"]["rounds"] == out.stats.rounds
        # the per-cell tracer was ambient only for the cell's duration
        assert obs.current_tracer() is None

    def test_run_task_without_trace_dir_writes_nothing(self):
        out = run_task(_cell("plain"))
        assert out.ok
        assert "trace_path" not in out.extra

    def test_ambient_tracer_takes_precedence_over_trace_dir(self, tmp_path):
        obs.configure(trace_dir=tmp_path)
        tracer = Tracer()
        with obs.use_tracer(tracer):
            out = run_task(_cell("shared"))
        assert out.ok
        # the caller's tracer got the events; no per-cell file was written
        assert "trace_path" not in out.extra
        assert any(e["name"] == "cell" for e in tracer.events())
        assert os.listdir(tmp_path) == []


class TestTraceCLI:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "demo.trace.json"
        write_chrome(_demo_tracer(), path, process_name="demo")
        return path

    def test_summarize_files_prints_tables(self, trace_path):
        buf = io.StringIO()
        (summary,) = summarize_files([trace_path], out=buf)
        text = buf.getvalue()
        assert "simulated breakdown" in text
        assert "per-partition simulated seconds" in text
        assert "wall-clock by span category" in text
        assert "counters" in text
        assert summary["run_summary"]["rounds"] == 1

    def test_cli_summarize(self, trace_path, capsys):
        assert trace_cli_main(["summarize", str(trace_path), "--json"]) == 0
        out = capsys.readouterr().out
        assert "simulated breakdown" in out
        assert '"rounds": 1' in out

    def test_cli_csv(self, trace_path, tmp_path):
        out_csv = tmp_path / "t.csv"
        assert trace_cli_main(["csv", str(trace_path), "-o", str(out_csv)]) == 0
        lines = out_csv.read_text().splitlines()
        assert lines[0].startswith("ph,name,cat")
        assert any(line.startswith("M,process_name") for line in lines)
