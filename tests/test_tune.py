"""Tests for the repro.tune advisor: features, predictor, DSE, sanity.

Four layers of hardening, mirroring ISSUE 9:

* unit tests pin the feature extractor to hand-computed values on tiny
  graphs;
* hypothesis property tests pin relabeling invariance (features are an
  exact function of the degree multiset) and cost monotonicity (more
  edges / more partitions never predict cheaper comm);
* a differential test pins ``AnalyticPredictor.predict`` to a direct
  ``Router.price_batch`` + ``CostModel`` composition, bit for bit — the
  predictor must stay a pure function of the same pricing model;
* a leave-one-shape-out study calibrates on 12 of the 13 fuzz shapes
  and demands a top-3-quality pick on the holdout, for both engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import from_edges
from repro.tune.dse import (
    REGRET_GATE,
    DseConfig,
    enumerate_cells,
    fit_from_results,
    run_dse,
)
from repro.tune.features import (
    FEATURE_PARTS,
    GraphFeatures,
    expected_distinct_bins,
    extract_features,
)
from repro.tune.predictor import (
    APP_MODELS,
    ASYNC_ROUND_INFLATION,
    ASYNC_SYNC_DISCOUNT,
    AnalyticPredictor,
    ConfigCell,
    app_model,
)
from repro.tune.sanity import advisor_sanity


def star_graph(k=5):
    """Vertex 0 points at 1..k."""
    return from_edges([0] * k, list(range(1, k + 1)), num_vertices=k + 1)


def path_graph(n=4):
    return from_edges(list(range(n - 1)), list(range(1, n)), num_vertices=n)


# ---------------------------------------------------------------------- #
# feature extraction: hand-computed values
# ---------------------------------------------------------------------- #


class TestFeatures:
    def test_star_hand_computed(self):
        g = star_graph(5)  # n=6, m=5; out-degrees [5,0,0,0,0,0]
        f = extract_features(g, name="star5")
        assert f.num_vertices == 6
        assert f.num_edges == 5
        assert f.density == pytest.approx(5 / 36)
        assert f.avg_degree == pytest.approx(5 / 6)
        assert f.max_out_degree == 5
        assert f.max_in_degree == 1
        # out-degrees: mean 5/6, one 5 and five 0s
        mean = 5 / 6
        var = (5 * (0 - mean) ** 2 + (5 - mean) ** 2) / 6
        assert f.out_degree_cv == pytest.approx(np.sqrt(var) / mean)
        assert f.out_degree_skew == pytest.approx(5 / mean)
        # every leaf's in-degree (1) <= 4 * avg (10/3): no hubs
        assert f.hub_edge_fraction == 0.0
        # avg degree < 1 -> linear-depth proxy
        assert f.est_rounds == pytest.approx(6.0)
        assert f.out_degree_sketch == (5.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_path_hand_computed(self):
        g = path_graph(4)  # out-degrees [1,1,1,0]
        f = extract_features(g)
        assert f.avg_degree == pytest.approx(0.75)
        assert f.max_out_degree == 1
        assert f.out_degree_skew == pytest.approx(1 / 0.75)
        assert f.est_rounds == pytest.approx(4.0)

    def test_hub_edge_fraction_counts_hub_mass(self):
        # vertex 0 receives 9 in-edges, the rest 1 each: avg degree
        # 12/11, hub cut 48/11 ~ 4.36, so only the 9-degree hub counts.
        src = [1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 2, 3]
        dst = [0] * 9 + [4, 5, 6]
        f = extract_features(from_edges(src, dst, num_vertices=11))
        assert f.hub_edge_fraction == pytest.approx(9 / 12)

    def test_expected_distinct_bins_formula(self):
        d = np.array([0.0, 1.0, 2.0])
        np.testing.assert_allclose(
            expected_distinct_bins(d, 4), 4 * (1 - 0.75**d)
        )
        # one bin (or fewer) is always exactly one distinct bin
        np.testing.assert_allclose(expected_distinct_bins(d, 1), [1, 1, 1])

    def test_replication_table_covers_policy_grid(self):
        f = extract_features(star_graph(5))
        for P in FEATURE_PARTS:
            for policy in ("iec", "oec", "cvc", "hvc"):
                rf = f.rf(policy, P)
                assert 1.0 <= rf <= P
        with pytest.raises(KeyError):
            f.rf("iec", 3)

    def test_star_replication_hand_computed(self):
        # The hub's 5 out-edges spread over P=2 bins:
        # E[distinct] = 2 * (1 - 0.5^5) = 1.9375; leaves contribute 1.
        f = extract_features(star_graph(5))
        assert f.rf("iec", 2) == pytest.approx((2 * (1 - 0.5**5) + 5) / 6)
        # OEC: every in-degree is <= 1 -> no replication at all.
        assert f.rf("oec", 2) == pytest.approx(1.0)

    def test_features_roundtrip_dict(self):
        f = extract_features(star_graph(5), name="rt")
        assert GraphFeatures.from_dict(f.to_dict()) == f

    def test_empty_graph(self):
        f = extract_features(from_edges([], [], num_vertices=0))
        assert f.num_vertices == 0
        assert f.replication == ()


# ---------------------------------------------------------------------- #
# hypothesis: relabeling invariance + cost monotonicity
# ---------------------------------------------------------------------- #


@st.composite
def edge_lists(draw, max_n=30, max_m=60):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, src, dst


class TestProperties:
    @given(el=edge_lists(), perm_seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_features_relabeling_invariant(self, el, perm_seed):
        n, src, dst = el
        g = from_edges(src, dst, num_vertices=n)
        perm = np.random.default_rng(perm_seed).permutation(n)
        g2 = from_edges(
            perm[np.asarray(src, dtype=np.int64)] if src else [],
            perm[np.asarray(dst, dtype=np.int64)] if dst else [],
            num_vertices=n,
        )
        # exact equality, not approx: features are a deterministic
        # function of the (sorted) degree multiset
        assert extract_features(g, name="x") == extract_features(g2, name="x")

    @given(el=edge_lists(max_m=40), dup=st.integers(2, 4),
           policy=st.sampled_from(["iec", "oec", "cvc", "hvc"]))
    @settings(max_examples=25, deadline=None)
    def test_cost_monotone_in_edges(self, el, dup, policy):
        # duplicating the edge list scales every degree uniformly: more
        # edges with the same distribution shape must never predict
        # cheaper (pr has fixed rounds, so whole-run totals compare
        # like-for-like).  Arbitrary single-edge additions are excluded
        # on purpose — they reshape the degree distribution, and the
        # balancer's block quantization is legitimately non-monotone in
        # shape at the margin.
        n, src, dst = el
        cell = ConfigCell(policy=policy, num_gpus=4)
        lo = AnalyticPredictor(
            extract_features(from_edges(src, dst, num_vertices=n))
        ).predict(cell, "pr")
        hi = AnalyticPredictor(
            extract_features(from_edges(list(src) * dup, list(dst) * dup,
                                        num_vertices=n))
        ).predict(cell, "pr")
        assert hi.breakdown.total >= lo.breakdown.total - 1e-15

    @given(el=edge_lists(), policy=st.sampled_from(["iec", "oec", "hvc"]))
    @settings(max_examples=25, deadline=None)
    def test_comm_monotone_in_parts(self, el, policy):
        # more partitions never predict *cheaper* sync+serialize: mirrors
        # only grow with P (cvc excluded — its grid changes partner
        # structure non-monotonically by design)
        n, src, dst = el
        pred = AnalyticPredictor(
            extract_features(from_edges(src, dst, num_vertices=n))
        )
        comm = []
        for P in (2, 4, 8):
            b = pred.predict(ConfigCell(policy=policy, num_gpus=P), "pr").breakdown
            comm.append(b.sync + b.serialize)
        assert comm[0] <= comm[1] + 1e-15
        assert comm[1] <= comm[2] + 1e-15


# ---------------------------------------------------------------------- #
# differential: the predictor is a pure function of the pricing model
# ---------------------------------------------------------------------- #


class TestDifferential:
    @pytest.mark.parametrize("policy", ["iec", "cvc"])
    @pytest.mark.parametrize("engine", ["bsp", "basp"])
    def test_predict_pins_to_router_composition(self, policy, engine, small_graph):
        """2x2 (policy x engine) micro-sweep: predict() must equal the
        direct Router/CostModel composition on its own synthetic inputs —
        no pricing formulas of the predictor's own."""
        app = "pr"  # async-capable, pull direction (phase factor 1.0)
        features = extract_features(small_graph, name="diff")
        pred = AnalyticPredictor(features, scale_factor=3.0)
        cell = ConfigCell(policy=policy, engine=engine, num_gpus=4)
        got = pred.predict(cell, app)

        # -- independent composition of the same primitives ------------- #
        cm = pred.cost_model(cell)
        frontier = pred.frontier_degrees(cell, app)
        msgs = pred.synthetic_messages(cell, app)
        compute = cm.compute_time(0, frontier)
        priced = cm.price_batch(msgs)
        net = cm.route_step(priced)
        sync = float(np.max(net.eff_inter))
        per_device = np.zeros(cell.num_gpus)
        np.add.at(per_device, priced.src, priced.extraction + priced.d2h)
        np.add.at(per_device, priced.dst, priced.h2d)
        serialize = float(per_device.max())
        overhead = cm.allreduce_time()

        phi = pred.phase_factor(cell, app)
        assert phi == 1.0  # pr is pull-direction: both phases loaded
        rounds = app_model(app).rounds(features)
        if engine == "basp":
            rounds *= ASYNC_ROUND_INFLATION
            sync *= ASYNC_SYNC_DISCOUNT
        assert got.rounds == rounds
        # exact equality: same objects, same float ops, same order
        assert got.breakdown.compute == compute * rounds
        assert got.breakdown.sync == sync * rounds
        assert got.breakdown.serialize == serialize * rounds
        assert got.breakdown.overhead == overhead * rounds
        assert got.cost == got.breakdown.total

    def test_push_phase_factor_scales_comm_only(self, small_graph):
        """bfs on iec: comm legs exactly halve, compute untouched."""
        features = extract_features(small_graph)
        pred = AnalyticPredictor(features)
        iec = ConfigCell(policy="iec", num_gpus=4)
        assert pred.phase_factor(iec, "bfs") == 0.5
        got = pred.predict(iec, "bfs").breakdown
        cm = pred.cost_model(iec)
        raw = cm.price_round(
            pred.frontier_degrees(iec, "bfs"), pred.synthetic_messages(iec, "bfs")
        )
        rounds = app_model("bfs").rounds(features)
        assert got.sync == raw.sync * 0.5 * rounds
        assert got.serialize == raw.serialize * 0.5 * rounds
        assert got.compute == raw.compute * rounds

    def test_rank_orders_by_cost_then_label(self, small_graph):
        pred = AnalyticPredictor(extract_features(small_graph))
        cells = [ConfigCell(policy=p, num_gpus=g)
                 for p in ("iec", "oec", "cvc", "hvc") for g in (2, 4)]
        ranked = pred.rank(cells, "bfs")
        keys = [(r.cost, r.cell.label()) for r in ranked]
        assert keys == sorted(keys)


# ---------------------------------------------------------------------- #
# DSE driver
# ---------------------------------------------------------------------- #


class TestDse:
    def test_enumerate_prunes_checker_rules(self):
        cfg = DseConfig(policies=("iec", "bogus"), engines=("bsp", "basp"),
                        gpus=(2, 3))
        cells, pruned = enumerate_cells(cfg, "bfs-do")  # not async-capable
        reasons = {r for _, r in pruned}
        assert reasons == {"policy-unsupported", "engine-unsound",
                           "parts-unestimated"}
        assert all(c.policy == "iec" and c.engine == "bsp" and c.num_gpus == 2
                   for c in cells)

    def test_run_dse_validates_topk(self):
        res = run_dse("fuzz:star:3", "bfs", DseConfig(top_k=2), validate="top-k")
        measured = res.measured()
        assert len(measured) == 2
        assert {o.predicted_rank for o in measured} == {1, 2}
        assert res.regret_at(1) >= 1.0

    def test_fuzz_dataset_deterministic(self):
        from repro.generators.datasets import load_dataset

        a = load_dataset("fuzz:rmat:11")
        b = load_dataset("fuzz:rmat:11")
        assert a.graph.num_vertices == b.graph.num_vertices
        assert np.array_equal(a.graph.indptr, b.graph.indptr)
        assert np.array_equal(a.graph.indices, b.graph.indices)
        with pytest.raises(KeyError):
            load_dataset("fuzz:not-a-shape:1")

    def test_leave_one_shape_out_accuracy(self):
        """Calibrate on 12 of the 13 fuzz shapes; the holdout's pick must
        be top-3-quality (regret@3 within the gate) for bfs and pr —
        covering both engines via the default bsp+basp cell axis."""
        from repro.fuzz.gen import SHAPES

        shapes = sorted(SHAPES)
        assert len(shapes) == 13
        holdout = "powerlaw"
        cfg = DseConfig(gpus=(2, 4))
        for app in ("bfs", "pr"):
            train = [
                run_dse(f"fuzz:{s}:5", app, cfg, validate="all")
                for s in shapes if s != holdout
            ]
            calib = fit_from_results(train)
            assert calib.weights_for(app) is not None
            res = run_dse(
                f"fuzz:{holdout}:5", app, cfg, validate="all", calibration=calib
            )
            engines = {o.prediction.cell.engine for o in res.outcomes}
            assert engines == {"bsp", "basp"}
            regret3 = res.regret_at(3)
            assert regret3 is not None and regret3 <= REGRET_GATE, (
                f"{app} holdout {holdout}: regret@3 {regret3:.3f} "
                f"> {REGRET_GATE}"
            )


# ---------------------------------------------------------------------- #
# advisor-sanity (the fuzzer mode)
# ---------------------------------------------------------------------- #


class TestSanity:
    def test_clean_batch_is_sound(self):
        report = advisor_sanity(seed=0, iterations=6)
        assert report.checked > 0
        assert report.ok, report.violations

    def test_planted_bug_is_caught(self):
        report = advisor_sanity(seed=0, iterations=10, planted=True)
        assert not report.ok
        assert any("basp" in v for v in report.violations)


def test_app_models_cover_registry():
    from repro.apps import APPS

    missing = sorted(set(APPS) - set(APP_MODELS))
    assert not missing, f"apps without an advisor model: {missing}"
