"""Property-based tests (hypothesis) for partitioning invariants.

These check the invariants the whole framework rests on, over arbitrary
random graphs: master uniqueness, edge conservation, exchange-list symmetry,
and each policy's structural invariant.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import from_edges
from repro.partition import POLICIES, partition

MAX_V = 60


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=2, max_value=MAX_V))
    m = draw(st.integers(min_value=0, max_value=4 * n))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return from_edges(src, dst, num_vertices=n)


@st.composite
def graph_and_parts(draw):
    g = draw(graphs())
    p = draw(st.sampled_from([1, 2, 3, 4, 6, 8]))
    return g, p


@given(gp=graph_and_parts(), policy=st.sampled_from(sorted(POLICIES)))
@settings(max_examples=60, deadline=None)
def test_partition_structurally_valid(gp, policy):
    g, parts = gp
    pg = partition(g, policy, parts, cache=False)
    pg.validate()


@given(gp=graph_and_parts(), policy=st.sampled_from(sorted(POLICIES)))
@settings(max_examples=40, deadline=None)
def test_gather_reconstructs_identity(gp, policy):
    g, parts = gp
    pg = partition(g, policy, parts, cache=False)
    labels = [p.local_to_global.astype(np.int64) for p in pg.parts]
    assert np.array_equal(
        pg.gather_master_labels(labels), np.arange(g.num_vertices)
    )


@given(gp=graph_and_parts())
@settings(max_examples=40, deadline=None)
def test_oec_invariant_holds(gp):
    g, parts = gp
    pg = partition(g, "oec", parts, cache=False)
    for p in pg.parts:
        assert not np.any(p.has_out_edges() & ~p.is_master)


@given(gp=graph_and_parts())
@settings(max_examples=40, deadline=None)
def test_iec_invariant_holds(gp):
    g, parts = gp
    pg = partition(g, "iec", parts, cache=False)
    for p in pg.parts:
        assert not np.any(p.has_in_edges() & ~p.is_master)


@given(gp=graph_and_parts())
@settings(max_examples=40, deadline=None)
def test_cvc_invariants_hold(gp):
    g, parts = gp
    pg = partition(g, "cvc", parts, cache=False)
    pr, pc = pg.grid
    for p in pg.parts:
        row, col = p.pid // pc, p.pid % pc
        out_g = p.local_to_global[p.has_out_edges()]
        in_g = p.local_to_global[p.has_in_edges()]
        assert np.all(pg.vertex_owner[out_g] // pc == row)
        assert np.all(pg.vertex_owner[in_g] % pc == col)


@given(gp=graph_and_parts(), policy=st.sampled_from(sorted(POLICIES)))
@settings(max_examples=40, deadline=None)
def test_local_degrees_sum_to_global(gp, policy):
    """Per-vertex out-degree summed over partitions equals global degree."""
    g, parts = gp
    pg = partition(g, policy, parts, cache=False)
    acc = np.zeros(g.num_vertices, dtype=np.int64)
    for p in pg.parts:
        np.add.at(acc, p.local_to_global, p.graph.out_degrees())
    assert np.array_equal(acc, g.out_degrees())


# --------------------------------------------------------------------- #
# the runtime invariant checkers, property-tested (PR 4)
# --------------------------------------------------------------------- #
# ``check_partition`` at FULL re-derives every structural invariant above
# (and more: edge multiset conservation, per-policy placement rules) from
# the partitioned structure alone.  Running it over arbitrary graphs for
# every policy x partition count — including the awkward prime P=5 that
# CVC pads into a ragged grid — is the standing guarantee that ``--check``
# never false-positives on a healthy partitioning.

from repro.check import CheckLevel, check_partition, check_partition_request


@st.composite
def graph_and_any_parts(draw):
    g = draw(graphs())
    p = draw(st.sampled_from([1, 2, 3, 4, 5, 6, 8]))
    return g, p


@given(gp=graph_and_any_parts(), policy=st.sampled_from(sorted(POLICIES)))
@settings(max_examples=60, deadline=None)
def test_checkers_accept_every_healthy_partition(gp, policy):
    g, parts = gp
    pg = partition(g, policy, parts, cache=False)
    check_partition_request(pg, policy, parts)
    check_partition(pg, CheckLevel.FULL)


@given(gp=graph_and_any_parts(), policy=st.sampled_from(sorted(POLICIES)))
@settings(max_examples=25, deadline=None)
def test_checkers_reject_mirror_promotion(gp, policy):
    """Promoting any mirror to master must always be caught at CHEAP."""
    import pytest

    from repro.errors import InvariantViolation

    g, parts = gp
    pg = partition(g, policy, parts, cache=False)
    victims = [p for p in pg.parts if not p.is_master.all()]
    if not victims:
        return  # no mirrors anywhere (e.g. P=1): nothing to corrupt
    part = victims[0]
    part.is_master[int(np.flatnonzero(~part.is_master)[0])] = True
    pg.__dict__.pop("_check_level_done", None)
    with pytest.raises(InvariantViolation):
        check_partition(pg, CheckLevel.CHEAP)
