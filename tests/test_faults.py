"""Tests for deterministic fault injection."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.engine import BASPEngine, BSPEngine, FaultPlan, RunContext
from repro.errors import SimulatedCrashError
from repro.hw import bridges
from repro.partition import partition


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan({0: 1})

    def test_check_fires_at_and_after_round(self):
        plan = FaultPlan({2: 5})
        plan.check(2, 4)  # before: fine
        with pytest.raises(SimulatedCrashError):
            plan.check(2, 5)
        with pytest.raises(SimulatedCrashError):
            plan.check(2, 9)

    def test_other_gpus_unaffected(self):
        plan = FaultPlan({2: 0})
        plan.check(0, 100)
        plan.check(1, 100)


class TestEngineIntegration:
    def test_bsp_crash_mid_run(self, small_graph, ctx):
        pg = partition(small_graph, "cvc", 4)
        eng = BSPEngine(
            pg, bridges(4), get_app("bfs"), check_memory=False,
            fault_plan=FaultPlan({1: 2}),
        )
        with pytest.raises(SimulatedCrashError):
            eng.run(ctx)

    def test_bsp_no_crash_without_plan(self, small_graph, ctx):
        pg = partition(small_graph, "cvc", 4)
        res = BSPEngine(
            pg, bridges(4), get_app("bfs"), check_memory=False,
        ).run(ctx)
        assert res.stats.rounds > 0

    def test_crash_after_convergence_never_fires(self, small_graph, ctx):
        pg = partition(small_graph, "cvc", 4)
        eng = BSPEngine(
            pg, bridges(4), get_app("bfs"), check_memory=False,
            fault_plan=FaultPlan({0: 10_000}),
        )
        res = eng.run(ctx)  # converges long before round 10k
        assert res.stats.rounds < 10_000

    def test_basp_crash(self, small_graph, ctx):
        pg = partition(small_graph, "cvc", 4)
        eng = BASPEngine(
            pg, bridges(4), get_app("sssp"), check_memory=False,
            fault_plan=FaultPlan({0: 1}),
        )
        with pytest.raises(SimulatedCrashError):
            eng.run(ctx)

    def test_scaling_driver_records_crash_as_missing(self, small_graph, ctx):
        """The study's missing-point path handles crashes like the paper."""
        from repro.frameworks import DIrGL
        from repro.generators import load_dataset
        from repro.study import strong_scaling

        class CrashyDIrGL(DIrGL):
            def run(self, *a, **kw):
                raise SimulatedCrashError("flaky node")

        ds = load_dataset("tiny-s")
        res = strong_scaling(
            {"crashy": lambda: CrashyDIrGL(policy="cvc")},
            "bfs", ds, gpu_counts=(2,),
        )
        assert res.times("crashy") == [None]
        assert "flaky" in res.points["crashy"][0].failure
