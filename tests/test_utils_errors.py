"""Tests for the shared utilities and the error hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import errors
from repro.utils import (
    balanced_prefix_split,
    blocked_ranges,
    grid_shape,
    rng_from_seed,
)


class TestBlockedRanges:
    def test_even_split(self):
        assert blocked_ranges(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split_front_loaded(self):
        rs = blocked_ranges(10, 3)
        sizes = [b - a for a, b in rs]
        assert sizes == [4, 3, 3]

    def test_more_parts_than_items(self):
        rs = blocked_ranges(2, 4)
        sizes = [b - a for a, b in rs]
        assert sizes == [1, 1, 0, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            blocked_ranges(4, 0)

    @given(n=st.integers(0, 300), p=st.integers(1, 17))
    @settings(max_examples=60, deadline=None)
    def test_covers_exactly(self, n, p):
        rs = blocked_ranges(n, p)
        assert len(rs) == p
        assert rs[0][0] == 0 and rs[-1][1] == n
        for (a0, b0), (a1, b1) in zip(rs, rs[1:]):
            assert b0 == a1
            assert b0 >= a0


class TestBalancedPrefixSplit:
    def test_uniform_weights(self):
        b = balanced_prefix_split(np.ones(12), 3)
        assert b.tolist() == [0, 4, 8, 12]

    def test_skewed_weights(self):
        w = np.array([100, 1, 1, 1, 1, 1])
        b = balanced_prefix_split(w, 2)
        # the heavy head forms its own chunk
        assert b[1] <= 1

    def test_zero_weights_fall_back_to_blocked(self):
        b = balanced_prefix_split(np.zeros(8), 2)
        assert b.tolist() == [0, 4, 8]

    def test_empty(self):
        assert balanced_prefix_split(np.empty(0), 3).tolist() == [0, 0, 0, 0]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            balanced_prefix_split(np.ones(3), 0)

    @given(
        w=st.lists(st.integers(0, 50), min_size=1, max_size=80),
        p=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_boundaries_monotone_and_complete(self, w, p):
        b = balanced_prefix_split(np.asarray(w, dtype=float), p)
        assert len(b) == p + 1
        assert b[0] == 0 and b[-1] == len(w)
        assert np.all(np.diff(b) >= 0)


class TestGridShape:
    def test_square(self):
        assert grid_shape(16) == (4, 4)

    def test_eight_is_4x2(self):
        assert grid_shape(8) == (4, 2)

    def test_prime_degenerates(self):
        assert grid_shape(7) == (7, 1)

    def test_rows_at_least_cols(self):
        for p in range(1, 40):
            r, c = grid_shape(p)
            assert r * c == p
            assert r >= c

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_shape(0)


class TestRng:
    def test_seed_reproducible(self):
        assert rng_from_seed(7).integers(100) == rng_from_seed(7).integers(100)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert rng_from_seed(g) is g


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "GraphFormatError", "PartitioningError", "CommunicationError",
            "ConvergenceError", "ConfigurationError",
            "UnsupportedFeatureError", "SimulatedOOMError",
            "SimulatedCrashError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_unsupported_is_configuration(self):
        assert issubclass(
            errors.UnsupportedFeatureError, errors.ConfigurationError
        )

    def test_oom_message_carries_sizes(self):
        e = errors.SimulatedOOMError(3, 20 * 2**30, 16 * 2**30)
        assert e.gpu_index == 3
        assert "20.00 GiB" in str(e)
        assert "16.00 GiB" in str(e)
