"""Differential suite: vectorized extraction vs the scalar reference.

``GluonComm._extract`` (flat-table NumPy bulk operations) must be
observationally identical to ``GluonComm._extract_scalar`` (the retained
per-element reference): same messages field-for-field, same wire bytes,
same dirty-bit state afterwards, same label mutations (accumulator
resets) — under AS and UO, with and without address memoization and
invariant filtering.  The batch message pricer is held to the same
standard against its per-message reference.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.comm import CommConfig, FieldSpec, GluonComm
from repro.comm.router import Router
from repro.graph import from_edges
from repro.hw import bridges, dgx2
from repro.partition import POLICIES, partition

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

FIELDS = [
    FieldSpec(name="dist", dtype=np.uint32, reduce_op="min",
              read_at="src", write_at="dst", identity=2**32 - 1),
    FieldSpec(name="acc", dtype=np.float64, reduce_op="add",
              read_at="none", write_at="dst", identity=0.0,
              reset_after_reduce=True),
    FieldSpec(name="rank", dtype=np.float32, reduce_op="add",
              read_at="src", write_at="master"),
]


def _fresh_comms(pg, config):
    """Two substrates over the same partitions, one per extraction path."""
    vec = GluonComm(pg, FIELDS, config)
    ref = GluonComm(pg, FIELDS, config)
    ref.use_scalar_extraction = True
    return vec, ref


def _labels_for(pg, spec, rng):
    if np.issubdtype(np.dtype(spec.dtype), np.integer):
        return [
            rng.integers(0, 1000, size=p.num_local).astype(spec.dtype)
            for p in pg.parts
        ]
    return [
        rng.random(p.num_local).astype(spec.dtype) for p in pg.parts
    ]


def _apply_writes(comm, pg, field, writes):
    for p, ids in writes.items():
        if len(ids):
            comm.mark_updated(field, p, np.asarray(ids, dtype=np.int64))


def _assert_messages_equal(got, want):
    assert len(got) == len(want)
    for m, r in zip(got, want):
        assert m.header == r.header
        assert m.exchange_len == r.exchange_len
        assert m.scanned_elements == r.scanned_elements
        assert m.values.dtype == r.values.dtype
        np.testing.assert_array_equal(m.values, r.values)
        if r.positions is None:
            assert m.positions is None
        else:
            assert m.positions is not None
            np.testing.assert_array_equal(m.positions, r.positions)
        if r.explicit_ids is None:
            assert m.explicit_ids is None
        else:
            assert m.explicit_ids is not None
            np.testing.assert_array_equal(m.explicit_ids, r.explicit_ids)
        assert m.wire_bytes() == r.wire_bytes()


def _run_differential(g, policy, parts, config, seed):
    pg = partition(g, policy, parts, cache=False)
    vec, ref = _fresh_comms(pg, config)
    rng = np.random.default_rng(seed)
    all_msgs = []

    for spec in FIELDS:
        labels_v = _labels_for(pg, spec, np.random.default_rng(seed + 1))
        labels_r = [a.copy() for a in labels_v]
        writes = {
            p: np.unique(
                rng.integers(0, pg.parts[p].num_local, size=rng.integers(0, 30))
            )
            for p in range(pg.num_partitions)
        }
        _apply_writes(vec, pg, spec.name, writes)
        _apply_writes(ref, pg, spec.name, writes)
        for phase in ("reduce", "broadcast"):
            for p in range(pg.num_partitions):
                mv = vec._extract(spec.name, phase, p, labels_v)
                mr = ref._extract_scalar(spec.name, phase, p, labels_r)
                _assert_messages_equal(mv, mr)
                all_msgs.extend(mv)
                # dirty bits and label mutations must track identically
                assert vec.updated[spec.name][p] == ref.updated[spec.name][p]
                np.testing.assert_array_equal(labels_v[p], labels_r[p])
    return all_msgs


@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize(
    "config",
    [
        CommConfig(update_only=True),
        CommConfig(update_only=False),
        CommConfig(update_only=True, memoize_addresses=False),
        CommConfig(update_only=False, memoize_addresses=False),
        CommConfig(update_only=True, invariant_filtering=False),
    ],
    ids=["uo", "as", "uo-ids", "as-ids", "uo-nofilter"],
)
def test_vectorized_matches_scalar(small_graph, policy, config):
    _run_differential(small_graph, policy, 4, config, seed=7)


@st.composite
def _scenario(draw):
    n = draw(st.integers(8, 60))
    m = draw(st.integers(n, 4 * n))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    g = from_edges(src, dst, num_vertices=n)
    policy = draw(st.sampled_from(sorted(POLICIES)))
    parts = draw(st.sampled_from([2, 3, 4]))
    update_only = draw(st.booleans())
    memoize = draw(st.booleans())
    seed = draw(st.integers(0, 2**16))
    return g, policy, parts, update_only, memoize, seed


@given(s=_scenario())
@SETTINGS
def test_vectorized_matches_scalar_on_arbitrary_graphs(s):
    g, policy, parts, update_only, memoize, seed = s
    config = CommConfig(update_only=update_only, memoize_addresses=memoize)
    _run_differential(g, policy, parts, config, seed)


@pytest.mark.parametrize("cluster_fn", [bridges, dgx2], ids=["bridges", "dgx2"])
def test_batch_pricing_matches_per_message(small_graph, cluster_fn):
    """Router.price_batch must be bit-exact against the scalar legs."""
    pg = partition(small_graph, "cvc", 4, cache=False)
    config = CommConfig(update_only=True)
    vec, _ = _fresh_comms(pg, config)
    rng = np.random.default_rng(11)
    labels = _labels_for(pg, FIELDS[0], rng)
    for p in range(4):
        vec.mark_updated(
            "dist", p, rng.integers(0, pg.parts[p].num_local, size=40)
        )
    msgs = []
    for p in range(4):
        msgs += vec.make_reduce_messages("dist", p, labels)
    assert msgs, "workload produced no messages"
    router = Router(cluster_fn(4), volume_scale=500.0)
    batch = router.price_batch(msgs)
    ref = router.price_batch_scalar(msgs)
    for name in ("src", "dst", "d2h", "inter", "h2d", "extraction",
                 "scaled_bytes"):
        np.testing.assert_array_equal(
            getattr(batch, name), getattr(ref, name), err_msg=name
        )


def test_uo_partner_with_no_dirty_elements_gets_no_message(small_graph):
    """Regression: a sender serving several partners must skip (not
    mis-slice) a partner whose segment has zero dirty proxies, and the
    scalar reference must agree."""
    pg = partition(small_graph, "iec", 4, cache=False)
    vec, ref = _fresh_comms(pg, CommConfig(update_only=True))
    # find a (phase, sender) whose flat table serves several partners
    table, phase_i, sender = None, None, None
    for pi, phase in enumerate(("reduce", "broadcast")):
        for p in range(4):
            t = vec._tables["dist"][pi][p]
            if t is not None and t.num_segments >= 2:
                table, phase_i, sender = t, pi, p
                break
        if table is not None:
            break
    assert table is not None, "no multi-partner sender in this partitioning"
    phase = ("reduce", "broadcast")[phase_i]
    # dirty exactly one partner's segment, leaving the others' empty
    lo, hi = table.offsets[0], table.offsets[1]
    dirty_ids = table.flat_send[lo:hi]
    labels_v = _labels_for(pg, FIELDS[0], np.random.default_rng(3))
    labels_r = [a.copy() for a in labels_v]
    vec.mark_updated("dist", sender, dirty_ids)
    ref.mark_updated("dist", sender, dirty_ids)
    mv = vec._extract("dist", phase, sender, labels_v)
    mr = ref._extract_scalar("dist", phase, sender, labels_r)
    _assert_messages_equal(mv, mr)
    receivers = {m.header.dst for m in mv}
    # segments overlap (one proxy can serve several partners), so every
    # partner whose segment intersects the dirty set gets a message and
    # no other partner does
    dirty_set = set(int(i) for i in dirty_ids)
    for k, partner in enumerate(table.receivers):
        seg = table.flat_send[table.offsets[k]:table.offsets[k + 1]]
        overlaps = any(int(i) in dirty_set for i in seg)
        assert (partner in receivers) == overlaps
    assert vec.updated["dist"][sender] == ref.updated["dist"][sender]
    assert not vec.updated["dist"][sender].any()


def test_uo_extraction_with_nothing_dirty_is_empty(small_graph):
    pg = partition(small_graph, "iec", 4, cache=False)
    vec, ref = _fresh_comms(pg, CommConfig(update_only=True))
    labels = _labels_for(pg, FIELDS[0], np.random.default_rng(5))
    for p in range(4):
        assert vec._extract("dist", "reduce", p, labels) == []
        assert ref._extract_scalar("dist", "reduce", p, labels) == []
        assert not vec.pending_sends("dist", "reduce", p)
