"""Degenerate-graph matrix: every app x pathological shape x engine.

Three PRs of optimization were validated on healthy R-MAT graphs; these
shapes are the ones that break hidden assumptions — no edges at all, a
single vertex, pure self-loops, a star (one high-degree hub), and a path
(maximum diameter).  Each cell runs through the fuzz-case replay path at
FULL check level, which verifies runtime invariants *and* compares the
final labels against the single-machine reference.
"""

import numpy as np
import pytest

from repro.apps import APPS, get_app
from repro.fuzz.cases import SYMMETRIC_APPS, Case, run_case
from repro.graph.builder import from_edges
from repro.graph.transform import add_random_weights, make_undirected

_E = np.empty(0, dtype=np.int64)


def _shapes():
    n = 9
    return {
        "empty": from_edges(_E, _E, num_vertices=6, name="edge-empty"),
        "single-vertex": from_edges(_E, _E, num_vertices=1, name="edge-one"),
        "single-vertex-loop": from_edges([0], [0], num_vertices=1,
                                         name="edge-one-loop"),
        "self-loops": from_edges(np.arange(6), np.arange(6),
                                 num_vertices=6, name="edge-loops"),
        "star": from_edges(np.zeros(n - 1, dtype=np.int64),
                           np.arange(1, n), num_vertices=n,
                           name="edge-star"),
        "star-in": from_edges(np.arange(1, n),
                              np.zeros(n - 1, dtype=np.int64),
                              num_vertices=n, name="edge-star-in"),
        "path": from_edges(np.arange(n - 1), np.arange(1, n),
                           num_vertices=n, name="edge-path"),
    }


SHAPES = _shapes()


def _case(app_name: str, shape: str, engine: str) -> Case:
    graph = SHAPES[shape]
    if app_name in SYMMETRIC_APPS:
        graph = make_undirected(graph)
    graph = add_random_weights(graph, seed=13)
    return Case.from_graph(
        graph, app=app_name, policy="cvc" if engine == "bsp" else "oec",
        parts=3, engine=engine, shape=shape, k=2,
        note=f"edge-case {shape}",
    )


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("app_name", sorted(APPS))
def test_edge_case_bsp(app_name, shape):
    labels = run_case(_case(app_name, shape, "bsp"), check="full")
    assert labels is not None


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize(
    "app_name",
    sorted(a for a in APPS if get_app(a).async_capable),
)
def test_edge_case_basp(app_name, shape):
    labels = run_case(_case(app_name, shape, "basp"), check="full")
    assert labels is not None


def test_more_partitions_than_vertices():
    # empty partitions must be structurally valid and produce the answer
    g = add_random_weights(
        from_edges([0, 1], [1, 2], num_vertices=3, name="edge-tiny"), seed=1
    )
    case = Case.from_graph(g, app="bfs", policy="oec", parts=8,
                           engine="bsp", shape="tiny")
    labels = run_case(case, check="full")
    assert labels is not None
