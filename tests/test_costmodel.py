"""Tests for the cost model and message router pricing."""

import numpy as np
import pytest

from repro.comm import Message, MessageHeader
from repro.comm.router import Router
from repro.engine.costmodel import CostModel
from repro.hw import bridges, tuxedo
from repro.loadbalance import ALB, TWC


def msg(src=0, dst=2, n=1000, scanned=0):
    return Message(
        header=MessageHeader(src, dst, "reduce", "dist"),
        values=np.zeros(n, dtype=np.uint32),
        scanned_elements=scanned,
    )


class TestCostModel:
    def test_empty_round_free(self):
        cm = CostModel(bridges(4), ALB)
        assert cm.compute_time(0, np.empty(0)) == 0.0

    def test_compute_scales_with_work(self):
        cm = CostModel(bridges(4), ALB)
        small = cm.compute_time(0, np.full(100, 10.0))
        big = cm.compute_time(0, np.full(10000, 10.0))
        assert big > 3 * small

    def test_scale_factor_inflates(self):
        c1 = CostModel(bridges(4), ALB, scale_factor=1.0)
        c2 = CostModel(bridges(4), ALB, scale_factor=100.0)
        deg = np.full(1000, 20.0)
        assert c2.compute_time(0, deg) > 20 * c1.compute_time(0, deg)

    def test_twc_pays_for_giant_vertex(self):
        deg = np.full(1000, 10.0)
        deg[0] = 1e6
        twc = CostModel(bridges(4), TWC).compute_time(0, deg)
        alb = CostModel(bridges(4), ALB).compute_time(0, deg)
        assert twc > 3 * alb

    def test_heterogeneous_devices_differ(self):
        cm = CostModel(tuxedo(6), ALB)
        deg = np.full(5000, 20.0)
        k80 = cm.compute_time(0, deg)  # K80
        gtx = cm.compute_time(5, deg)  # GTX1080
        assert k80 != gtx

    def test_master_time_zero_when_untouched(self):
        cm = CostModel(bridges(4), ALB)
        assert cm.master_time(0, 0) == 0.0
        assert cm.master_time(0, 1000) > 0.0

    def test_allreduce_grows_with_hosts(self):
        small = CostModel(bridges(2), ALB).allreduce_time()
        big = CostModel(bridges(64), ALB).allreduce_time()
        assert big > small

    def test_single_host_allreduce_cheap(self):
        assert CostModel(tuxedo(4), ALB).allreduce_time() < 1e-5


class TestRouter:
    def test_same_host_skips_network(self):
        r = Router(bridges(4))
        same = r.legs(msg(src=0, dst=1))  # GPUs 0,1 share host 0
        cross = r.legs(msg(src=0, dst=2))
        assert same.total < cross.total

    def test_loopback_free(self):
        r = Router(bridges(4))
        legs = r.legs(msg(src=1, dst=1))
        assert legs.total == 0.0

    def test_volume_scale_inflates(self):
        r1 = Router(bridges(4), volume_scale=1.0)
        r2 = Router(bridges(4), volume_scale=1000.0)
        assert r2.legs(msg()).total > 10 * r1.legs(msg()).total
        assert r2.scaled_bytes(msg()) == 1000.0 * r1.scaled_bytes(msg())

    def test_extraction_time_from_scan(self):
        r = Router(bridges(4))
        assert r.extraction_time(msg(scanned=0)) == 0.0
        assert r.extraction_time(msg(scanned=100000)) > 0.0

    def test_route_arrival(self):
        r = Router(bridges(4))
        routed = r.route(msg(), depart=5.0)
        assert routed.arrival == pytest.approx(5.0 + routed.legs.total)
        assert routed.legs.device_legs == pytest.approx(
            routed.legs.d2h + routed.legs.h2d
        )

    def test_serialization_dominates_large_messages(self):
        """The per-element host cost is the device-comm bottleneck — the
        model behind the paper's GPUDirect recommendation."""
        r = Router(bridges(4), volume_scale=1000.0)
        legs = r.legs(msg(n=100_000))
        nbytes = r.scaled_bytes(msg(n=100_000))
        pure_pcie = r.cluster.pcie.time(nbytes)
        assert legs.d2h > 2 * pure_pcie


class TestCostBreakdown:
    """The stable schema shared with partition stats and repro.tune."""

    def test_roundtrip(self):
        from repro.engine.costmodel import CostBreakdown

        b = CostBreakdown(compute=1.5, sync=0.25, serialize=0.125, overhead=1e-6)
        assert CostBreakdown.from_dict(b.to_dict()) == b
        assert b.total == pytest.approx(1.5 + 0.25 + 0.125 + 1e-6)

    def test_from_dict_rejects_unknown_keys(self):
        from repro.engine.costmodel import CostBreakdown
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown CostBreakdown"):
            CostBreakdown.from_dict({"compute": 1.0, "network": 2.0})

    def test_add_and_scale(self):
        from repro.engine.costmodel import CostBreakdown

        a = CostBreakdown(compute=1.0, sync=2.0)
        b = CostBreakdown(serialize=3.0, overhead=4.0)
        assert (a + b).legs().tolist() == [1.0, 2.0, 3.0, 4.0]
        assert a.scaled(2.0) == CostBreakdown(compute=2.0, sync=4.0)

    def test_price_round_composes_primitives(self):
        cm = CostModel(bridges(4), ALB, scale_factor=2.0)
        deg = np.full(200, 8.0)
        msgs = [msg(src=0, dst=2, n=500, scanned=500),
                msg(src=1, dst=3, n=300)]
        b = cm.price_round(deg, msgs)
        assert b.compute == cm.compute_time(0, deg)
        priced = cm.price_batch(msgs)
        assert b.sync == pytest.approx(float(np.max(cm.route_step(priced).eff_inter)))
        from repro.engine.costmodel import serialize_seconds_by_device

        per_dev = serialize_seconds_by_device(priced, 4)
        assert b.serialize == pytest.approx(float(per_dev.max()))
        assert b.overhead == cm.allreduce_time()
        # no messages -> zero comm legs, compute and overhead unchanged
        empty = cm.price_round(deg, [])
        assert empty.sync == 0.0 and empty.serialize == 0.0
        assert empty.compute == b.compute

    def test_serialize_by_device_charges_ends(self):
        from repro.engine.costmodel import serialize_seconds_by_device

        cm = CostModel(bridges(4), ALB)
        priced = cm.price_batch([msg(src=0, dst=2, n=1000, scanned=1000)])
        per_dev = serialize_seconds_by_device(priced, 4)
        # sender pays extraction + d2h, receiver pays h2d, others nothing
        assert per_dev[0] == pytest.approx(float(priced.extraction[0] + priced.d2h[0]))
        assert per_dev[2] == pytest.approx(float(priced.h2d[0]))
        assert per_dev[1] == 0.0 and per_dev[3] == 0.0


class TestPartitionStatsSchema:
    """PartitionStats <-> dict round trip + the comm_breakdown bridge."""

    def _stats(self):
        from repro.generators import rmat
        from repro.partition import partition
        from repro.partition.stats import partition_stats

        g = rmat(8, edge_factor=6, seed=2)
        return partition_stats(partition(g, "cvc", 4, cache=False))

    def test_roundtrip(self):
        from repro.partition.stats import PartitionStats

        s = self._stats()
        assert PartitionStats.from_dict(s.to_dict()) == s

    def test_from_dict_rejects_unknown_and_missing(self):
        from repro.errors import ConfigurationError
        from repro.partition.stats import PartitionStats

        d = self._stats().to_dict()
        d["bogus"] = 1
        with pytest.raises(ConfigurationError, match="unknown PartitionStats"):
            PartitionStats.from_dict(d)
        del d["bogus"], d["policy"]
        with pytest.raises(ConfigurationError, match="missing PartitionStats"):
            PartitionStats.from_dict(d)

    def test_comm_breakdown_prices_through_cost_model(self):
        from repro.partition.stats import sync_messages_for_stats

        s = self._stats()
        cm = CostModel(bridges(4), ALB, scale_factor=10.0)
        b = s.comm_breakdown(cm, update_only=True, updated_fraction=0.5)
        assert b.compute == 0.0  # stats cannot know the app's frontier
        assert b.sync > 0.0 and b.serialize > 0.0
        ref = cm.price_round(
            np.empty(0),
            sync_messages_for_stats(s, update_only=True, updated_fraction=0.5),
        )
        assert b == ref
