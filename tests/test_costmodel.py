"""Tests for the cost model and message router pricing."""

import numpy as np
import pytest

from repro.comm import Message, MessageHeader
from repro.comm.router import Router
from repro.engine.costmodel import CostModel
from repro.hw import bridges, tuxedo
from repro.loadbalance import ALB, TWC


def msg(src=0, dst=2, n=1000, scanned=0):
    return Message(
        header=MessageHeader(src, dst, "reduce", "dist"),
        values=np.zeros(n, dtype=np.uint32),
        scanned_elements=scanned,
    )


class TestCostModel:
    def test_empty_round_free(self):
        cm = CostModel(bridges(4), ALB)
        assert cm.compute_time(0, np.empty(0)) == 0.0

    def test_compute_scales_with_work(self):
        cm = CostModel(bridges(4), ALB)
        small = cm.compute_time(0, np.full(100, 10.0))
        big = cm.compute_time(0, np.full(10000, 10.0))
        assert big > 3 * small

    def test_scale_factor_inflates(self):
        c1 = CostModel(bridges(4), ALB, scale_factor=1.0)
        c2 = CostModel(bridges(4), ALB, scale_factor=100.0)
        deg = np.full(1000, 20.0)
        assert c2.compute_time(0, deg) > 20 * c1.compute_time(0, deg)

    def test_twc_pays_for_giant_vertex(self):
        deg = np.full(1000, 10.0)
        deg[0] = 1e6
        twc = CostModel(bridges(4), TWC).compute_time(0, deg)
        alb = CostModel(bridges(4), ALB).compute_time(0, deg)
        assert twc > 3 * alb

    def test_heterogeneous_devices_differ(self):
        cm = CostModel(tuxedo(6), ALB)
        deg = np.full(5000, 20.0)
        k80 = cm.compute_time(0, deg)  # K80
        gtx = cm.compute_time(5, deg)  # GTX1080
        assert k80 != gtx

    def test_master_time_zero_when_untouched(self):
        cm = CostModel(bridges(4), ALB)
        assert cm.master_time(0, 0) == 0.0
        assert cm.master_time(0, 1000) > 0.0

    def test_allreduce_grows_with_hosts(self):
        small = CostModel(bridges(2), ALB).allreduce_time()
        big = CostModel(bridges(64), ALB).allreduce_time()
        assert big > small

    def test_single_host_allreduce_cheap(self):
        assert CostModel(tuxedo(4), ALB).allreduce_time() < 1e-5


class TestRouter:
    def test_same_host_skips_network(self):
        r = Router(bridges(4))
        same = r.legs(msg(src=0, dst=1))  # GPUs 0,1 share host 0
        cross = r.legs(msg(src=0, dst=2))
        assert same.total < cross.total

    def test_loopback_free(self):
        r = Router(bridges(4))
        legs = r.legs(msg(src=1, dst=1))
        assert legs.total == 0.0

    def test_volume_scale_inflates(self):
        r1 = Router(bridges(4), volume_scale=1.0)
        r2 = Router(bridges(4), volume_scale=1000.0)
        assert r2.legs(msg()).total > 10 * r1.legs(msg()).total
        assert r2.scaled_bytes(msg()) == 1000.0 * r1.scaled_bytes(msg())

    def test_extraction_time_from_scan(self):
        r = Router(bridges(4))
        assert r.extraction_time(msg(scanned=0)) == 0.0
        assert r.extraction_time(msg(scanned=100000)) > 0.0

    def test_route_arrival(self):
        r = Router(bridges(4))
        routed = r.route(msg(), depart=5.0)
        assert routed.arrival == pytest.approx(5.0 + routed.legs.total)
        assert routed.legs.device_legs == pytest.approx(
            routed.legs.d2h + routed.legs.h2d
        )

    def test_serialization_dominates_large_messages(self):
        """The per-element host cost is the device-comm bottleneck — the
        model behind the paper's GPUDirect recommendation."""
        r = Router(bridges(4), volume_scale=1000.0)
        legs = r.legs(msg(n=100_000))
        nbytes = r.scaled_bytes(msg(n=100_000))
        pure_pcie = r.cluster.pcie.time(nbytes)
        assert legs.d2h > 2 * pure_pcie
