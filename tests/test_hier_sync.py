"""Two-level (intra-host -> network) synchronization.

The envelope guarantee: hierarchical aggregation concatenates payloads,
it never combines them, so the receiver applies the exact same values in
the exact same order — labels must be bit-identical to flat sync for
every app, policy, and engine, on every graph shape the fuzzer can draw.
What *may* change: wire message counts (down), wire bytes (down, by the
folded headers), and network-leg timing.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.comm import CommConfig
from repro.comm.hier import group_cross_host
from repro.engine import BASPEngine, BSPEngine
from repro.fuzz.cases import SYMMETRIC_APPS, Case, make_context
from repro.fuzz.gen import random_graph
from repro.graph.transform import add_random_weights, make_undirected
from repro.hw import ContentionConfig, bridges
from repro.hw.cluster import dgx2
from repro.partition import partition

_ENGINES = {"bsp": BSPEngine, "basp": BASPEngine}


def labels_equivalent(app_name, engine, flat, hier) -> bool:
    """Bitwise everywhere except async pagerank.

    BSP applies every message within its round regardless of arrival
    time, so hier timing changes can never reach the labels.  BASP is
    asynchronous: hier shifts arrivals, which reshuffles the application
    interleaving — exact apps still land on the same fixed point, but
    pagerank's float accumulation order moves in the low-order bits
    (exactly why the fuzzer keeps ``pr`` out of ``EXACT_APPS``); it gets
    the repo's standard pagerank tolerance instead.
    """
    if engine == "basp" and app_name in ("pr", "pr-push"):
        return bool(
            np.allclose(flat.labels, hier.labels, rtol=1e-3, atol=1e-9)
        )
    return np.array_equal(flat.labels, hier.labels)


def run_pair(graph, ctx, app_name, policy, engine, parts=8, cluster=None,
             **comm_kw):
    """Run flat vs hierarchical on identical inputs; return both results."""
    if cluster is None:
        cluster = bridges(parts)
    app = get_app(app_name)
    pg = partition(graph, policy, cluster.num_gpus, cache=False)
    results = []
    for hierarchical in (False, True):
        eng = _ENGINES[engine](
            pg, cluster, app,
            comm_config=CommConfig(hierarchical=hierarchical, **comm_kw),
            check_memory=False,
        )
        results.append(eng.run(ctx))
    return results


# --------------------------------------------------------------------------- #
# unit: the grouping itself
# --------------------------------------------------------------------------- #
class TestGrouping:
    def test_groups_by_host_pair_in_first_appearance_order(self):
        hsrc = np.array([0, 0, 1, 0, 1])
        hdst = np.array([1, 1, 0, 2, 0])
        cross = np.ones(5, dtype=bool)
        nbytes = np.array([100.0, 200.0, 50.0, 10.0, 40.0])
        aggs = group_cross_host(hsrc, hdst, cross, nbytes, 1.0)
        assert [(a.src_host, a.dst_host) for a in aggs] == [
            (0, 1), (1, 0), (0, 2)
        ]
        assert list(aggs[0].members) == [0, 1]
        assert list(aggs[1].members) == [2, 4]
        assert list(aggs[2].members) == [3]

    def test_saved_bytes_are_folded_headers(self):
        from repro.comm.buffers import HEADER_BYTES

        hsrc = np.array([0, 0, 0])
        hdst = np.array([1, 1, 1])
        cross = np.ones(3, dtype=bool)
        nbytes = np.array([100.0, 200.0, 300.0])
        (agg,) = group_cross_host(hsrc, hdst, cross, nbytes, 2.0)
        assert agg.saved_bytes == HEADER_BYTES * 2.0 * 2
        assert agg.wire_bytes == 600.0 - agg.saved_bytes

    def test_keys_split_aggregates(self):
        hsrc = np.array([0, 0])
        hdst = np.array([1, 1])
        cross = np.ones(2, dtype=bool)
        nbytes = np.array([100.0, 200.0])
        aggs = group_cross_host(
            hsrc, hdst, cross, nbytes, 1.0, keys=[("x", "r"), ("y", "r")]
        )
        assert len(aggs) == 2

    def test_non_cross_messages_excluded(self):
        hsrc = np.array([0, 0])
        hdst = np.array([0, 1])
        cross = np.array([False, True])
        aggs = group_cross_host(hsrc, hdst, cross, np.array([1.0, 2.0]), 1.0)
        assert len(aggs) == 1
        assert list(aggs[0].members) == [1]


# --------------------------------------------------------------------------- #
# label equivalence across the configuration space
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("app_name", ["bfs", "sssp", "cc", "pr"])
@pytest.mark.parametrize("policy", ["cvc", "oec", "iec"])
@pytest.mark.parametrize("engine", ["bsp", "basp"])
def test_labels_identical_across_apps(
    small_graph, small_sym, ctx, app_name, policy, engine
):
    if engine == "basp" and not get_app(app_name).async_capable:
        pytest.skip(f"{app_name} is not async-capable")
    graph = small_sym if get_app(app_name).needs_symmetric else small_graph
    flat, hier = run_pair(graph, ctx, app_name, policy, engine)
    assert labels_equivalent(app_name, engine, flat, hier)
    assert hier.stats.inter_host_messages <= flat.stats.inter_host_messages
    assert hier.stats.comm_volume_bytes <= flat.stats.comm_volume_bytes


def test_fuzzer_shapes_label_equivalence():
    """Hier on/off agree on every graph shape the fuzzer can draw."""
    rng = np.random.default_rng(2026)
    checked = 0
    for i in range(12):
        shape, graph = random_graph(rng)
        app_name = ["bfs", "cc", "pr", "sssp"][i % 4]
        if app_name in SYMMETRIC_APPS:
            graph = add_random_weights(make_undirected(graph), seed=i)
        if graph.num_vertices == 0:
            continue
        engine = "basp" if get_app(app_name).async_capable and i % 2 else "bsp"
        case = Case(app=app_name, policy="cvc", parts=4, engine=engine,
                    num_vertices=graph.num_vertices)
        ctx = make_context(graph, case)
        flat, hier = run_pair(graph, ctx, app_name, "cvc", engine, parts=4)
        assert labels_equivalent(app_name, engine, flat, hier), (
            f"hier changed labels on {shape}/{app_name}/{engine}"
        )
        checked += 1
    assert checked >= 8


class TestMessageReduction:
    def test_cross_host_messages_drop(self, small_graph, ctx):
        flat, hier = run_pair(small_graph, ctx, "bfs", "cvc", "bsp")
        # bridges-8 = 4 hosts x 2 GPUs: pairs sharing a (host, host) edge
        # must coalesce
        assert hier.stats.inter_host_messages < flat.stats.inter_host_messages
        assert hier.stats.num_messages < flat.stats.num_messages
        assert hier.stats.hier_aggregates > 0
        assert flat.stats.hier_aggregates == 0

    def test_rounds_and_work_unchanged_bsp(self, small_graph, ctx):
        flat, hier = run_pair(small_graph, ctx, "bfs", "cvc", "bsp")
        assert hier.stats.rounds == flat.stats.rounds
        assert hier.stats.work_items == flat.stats.work_items


class TestCombinations:
    def test_hier_with_as_comm(self, small_graph, ctx):
        flat, hier = run_pair(
            small_graph, ctx, "bfs", "cvc", "bsp", update_only=False
        )
        assert np.array_equal(flat.labels, hier.labels)
        assert hier.stats.inter_host_messages < flat.stats.inter_host_messages

    @pytest.mark.parametrize("engine", ["bsp", "basp"])
    def test_hier_with_contention(self, small_graph, ctx, engine):
        cluster = bridges(8, contention=ContentionConfig())
        flat, hier = run_pair(
            small_graph, ctx, "bfs", "cvc", engine, cluster=cluster
        )
        assert np.array_equal(flat.labels, hier.labels)
        if engine == "bsp":
            # a BSP sync step batches every pair at once, so same-host
            # partners must coalesce
            assert (hier.stats.inter_host_messages
                    < flat.stats.inter_host_messages)
        else:
            # BASP sends per local round from one device at a time, so
            # aggregation opportunities depend on the partner layout;
            # it must never *add* wire messages
            assert (hier.stats.inter_host_messages
                    <= flat.stats.inter_host_messages)

    def test_hier_with_contention_and_overlap_bsp(self, small_graph, ctx):
        cluster = bridges(8, contention=ContentionConfig())
        app = get_app("bfs")
        pg = partition(small_graph, "cvc", 8, cache=False)
        flat_eng = BSPEngine(pg, cluster, app, check_memory=False,
                             overlap_comm=0.5)
        hier_eng = BSPEngine(
            pg, cluster, app, check_memory=False, overlap_comm=0.5,
            comm_config=CommConfig(hierarchical=True),
        )
        flat, hier = flat_eng.run(ctx), hier_eng.run(ctx)
        assert np.array_equal(flat.labels, hier.labels)


class TestSingleHostNoOp:
    def test_dgx2_hier_is_exact_noop(self, small_graph, ctx):
        # one host => zero cross-host messages => nothing to aggregate;
        # the hierarchical path must reproduce flat timing bit-for-bit
        flat, hier = run_pair(
            small_graph, ctx, "bfs", "cvc", "bsp", cluster=dgx2(8)
        )
        assert np.array_equal(flat.labels, hier.labels)
        assert hier.stats.execution_time == flat.stats.execution_time
        assert hier.stats.comm_volume_bytes == flat.stats.comm_volume_bytes
        assert hier.stats.num_messages == flat.stats.num_messages
        assert hier.stats.inter_host_messages == 0
        assert hier.stats.hier_aggregates == 0

    def test_dgx2_basp_hier_is_exact_noop(self, small_graph, ctx):
        flat, hier = run_pair(
            small_graph, ctx, "bfs", "cvc", "basp", cluster=dgx2(8)
        )
        assert np.array_equal(flat.labels, hier.labels)
        assert hier.stats.execution_time == flat.stats.execution_time
        assert hier.stats.inter_host_messages == 0


class TestVariantLabel:
    def test_dirgl_hier_label(self):
        from repro.frameworks.dirgl import DIrGL

        assert DIrGL(hierarchical=True).variant_label().endswith("+Hier")
        assert "+Hier" not in DIrGL().variant_label()
