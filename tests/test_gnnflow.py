"""The GNN feature-gather workload: pricing, placement, determinism.

The differential suite pins ISSUE 10's acceptance criterion: gather
results (label CRCs) and feature-traffic counters are bit-identical
across engine executors (serial vs. threads) and sweep fan-out
(in-process vs. ``--jobs 2``) for every fuzz suite shape x partition
policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.router import Router
from repro.engine.operator import RoundOutput
from repro.errors import ConfigurationError
from repro.gnnflow import (
    GNN_POLICIES,
    GNN_SHAPES,
    GNNFlowConfig,
    evaluate_gnn,
    feature_value,
    gnn_study,
)
from repro.gnnflow.study import base_config, gnn_dataset
from repro.hw.cluster import ContentionConfig, bridges
from repro.obs.tracer import Tracer
from repro.runtime.cells import CellSpec, SystemSpec, run_task
from repro.runtime.sweep import SweepExecutor


def _spec(shape="powerlaw", policy="iec", cfg=None, **kwargs) -> CellSpec:
    cfg = cfg if cfg is not None else base_config()
    return CellSpec(
        key=(shape, policy),
        system=SystemSpec.dirgl(policy=policy, execution="sync"),
        benchmark="gnnflow",
        dataset=gnn_dataset(shape),
        num_gpus=4,
        platform="bridges:contended",
        check_memory=False,
        ctx_overrides=(("payload", cfg),),
        **kwargs,
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            {"feature_dim": 0},
            {"fanout": ()},
            {"fanout": (2, 0)},
            {"minibatch": 0},
            {"num_rounds": 0},
            {"cache_fraction": -0.1},
            {"cache_fraction": 1.5},
            {"bytes_per_feature": 0},
        ],
    )
    def test_bad_knobs_raise(self, bad):
        with pytest.raises(ConfigurationError):
            GNNFlowConfig(**bad)

    def test_config_is_hashable_for_ctx_overrides(self):
        cfg = GNNFlowConfig(cache_fraction=0.5)
        assert hash((("payload", cfg),))  # CellSpec is a frozen dataclass

    def test_miss_cost(self):
        assert GNNFlowConfig(feature_dim=8, bytes_per_feature=4).feature_nbytes == 32

    def test_feature_values_deterministic_unit_interval(self):
        v = feature_value(np.arange(1000))
        assert ((0.0 <= v) & (v < 1.0)).all()
        assert np.array_equal(v, feature_value(np.arange(1000)))


class TestRoundOutputDefaults:
    def test_label_only_programs_report_zero_feature_traffic(self):
        out = RoundOutput(
            updated={},
            activated=np.empty(0, dtype=np.int64),
            edges_processed=0,
            frontier_degrees=np.empty(0),
        )
        assert out.feature_bytes == 0.0
        assert out.feature_cache_hits == 0
        assert out.feature_cache_misses == 0


class TestFeatureLoadPricing:
    def test_zero_bytes_cost_nothing(self):
        router = Router(bridges(4))
        assert np.array_equal(
            router.price_feature_loads([0.0, 0.0, 0.0, 0.0]), np.zeros(4)
        )

    def test_negative_bytes_rejected(self):
        router = Router(bridges(4))
        with pytest.raises(ConfigurationError, match=">= 0"):
            router.price_feature_loads([-1.0, 0.0, 0.0, 0.0])

    def test_uncontended_is_flat_pcie_time(self):
        cluster = bridges(4)
        router = Router(cluster)
        times = router.price_feature_loads([1e6, 0.0, 2e6, 0.0])
        assert times[0] == pytest.approx(cluster.pcie.time(1e6))
        assert times[1] == 0.0
        assert times[2] == pytest.approx(cluster.pcie.time(2e6))

    def test_contended_without_model_raises_typed_error(self):
        router = Router(bridges(4))
        assert router.contention is None
        with pytest.raises(ConfigurationError, match="contention model"):
            router.price_feature_loads([1.0] * 4, contended=True)

    def test_same_host_loads_queue_on_staging(self):
        cluster = bridges(4, contention=ContentionConfig())
        router = Router(cluster)
        flat = router.price_feature_loads([1e6, 1e6, 0.0, 0.0])
        contended = router.price_feature_loads(
            [1e6, 1e6, 0.0, 0.0], contended=True
        )
        # GPUs 0 and 1 share host 0's staging path: the second load
        # starts only after the first finishes, doubling its span
        service = cluster.pcie.time(1e6)
        assert contended[0] == pytest.approx(flat[0])
        assert contended[1] == pytest.approx(2 * service)

    def test_volume_scale_inflates_feature_bytes(self):
        cluster = bridges(4)
        scaled = Router(cluster, volume_scale=10.0).price_feature_loads(
            [1e6, 0, 0, 0]
        )
        # pricing sees paper-scale bytes: 1e6 raw * 10x volume scale
        assert scaled[0] == pytest.approx(cluster.pcie.time(1e7))


class TestWorkloadAccounting:
    def test_h2d_bytes_equal_misses_times_feature_size(self):
        out = run_task(_spec())
        assert out.ok, out.failure
        st = out.stats
        cfg = base_config()
        assert st.feature_cache_hits == 0  # plain placement: no buffer
        assert st.feature_cache_misses > 0
        assert st.feature_h2d_bytes == pytest.approx(
            st.feature_cache_misses * cfg.feature_nbytes
        )
        assert st.rounds == cfg.num_rounds

    def test_caching_reduces_bytes_without_changing_labels(self):
        plain = run_task(_spec())
        cached = run_task(
            _spec(cfg=base_config().with_placement(cache_fraction=0.5))
        )
        assert plain.ok and cached.ok
        assert cached.labels_crc == plain.labels_crc
        assert cached.stats.feature_cache_hits > 0
        assert (
            cached.stats.feature_h2d_bytes < plain.stats.feature_h2d_bytes
        )

    def test_full_buffer_after_warmup_never_misses_twice(self):
        out = run_task(
            _spec(cfg=base_config().with_placement(cache_fraction=1.0))
        )
        assert out.ok
        st = out.stats
        # capacity covers every local vertex: a vertex can miss at most
        # once (cold), so misses are bounded by the graph size
        assert st.feature_cache_misses <= 40  # fuzz shapes are tiny

    def test_tracer_counters_record_feature_traffic(self):
        from repro.frameworks.dirgl import DIrGL
        from repro.generators.datasets import load_dataset

        tracer = Tracer()
        fw = DIrGL(policy="iec", execution="sync")
        cfg = base_config().with_placement(cache_fraction=0.5)
        res = fw.run(
            "gnnflow",
            load_dataset(gnn_dataset("powerlaw")),
            num_gpus=4,
            platform="bridges:contended",
            check_memory=False,
            tracer=tracer,
            payload=cfg,
        )
        st = res.stats
        assert tracer.counters.get("feature.h2d_bytes") == pytest.approx(
            st.feature_h2d_bytes
        )
        assert tracer.counters.get("cache.hit") == st.feature_cache_hits
        assert tracer.counters.get("cache.miss") == st.feature_cache_misses
        assert st.feature_cache_hits > 0


class TestDifferential:
    """ISSUE 10: bit-identical gathers across executors and job counts."""

    @pytest.mark.parametrize("shape", GNN_SHAPES)
    @pytest.mark.parametrize("policy", GNN_POLICIES)
    def test_serial_vs_threads_engine_executor(self, shape, policy):
        cfg = base_config().with_placement(
            cache_fraction=0.5, locality_sampling=True
        )
        serial = run_task(_spec(shape, policy, cfg))
        threads = run_task(
            _spec(shape, policy, cfg, engine_executor="threads")
        )
        assert serial.ok and threads.ok
        assert serial.labels_crc == threads.labels_crc
        for name in (
            "feature_h2d_bytes",
            "feature_cache_hits",
            "feature_cache_misses",
            "rounds",
        ):
            assert getattr(serial.stats, name) == getattr(
                threads.stats, name
            ), name

    def test_jobs_1_vs_2_byte_identical_report(self, tmp_path):
        serial = gnn_study(shapes=("powerlaw", "star"), policies=("iec", "cvc"))
        with SweepExecutor(jobs=2, cache_dir=str(tmp_path)) as ex:
            pooled = gnn_study(
                shapes=("powerlaw", "star"), policies=("iec", "cvc"),
                executor=ex,
            )
        assert serial.to_json() == pooled.to_json()


class TestEvaluateGnn:
    def test_clean_report_passes(self):
        report = gnn_study(shapes=("powerlaw",), policies=("iec",))
        assert evaluate_gnn(report) == []

    def test_baseline_drift_is_flagged(self):
        report = gnn_study(shapes=("powerlaw",), policies=("iec",))
        import copy

        drifted = copy.deepcopy(report)
        drifted.rows[0] = drifted.rows[0].__class__(
            **{**drifted.rows[0].to_dict(), "labels_crc": 1}
        )
        violations = evaluate_gnn(report, baseline=drifted)
        assert any("labels_crc" in v for v in violations)

    def test_weak_cache_fails_the_reduction_gate(self):
        report = gnn_study(shapes=("powerlaw",), policies=("iec",))
        weak = [
            r if r.placement != "cache"
            else r.__class__(**{**r.to_dict(), "h2d_bytes": report.row(
                "powerlaw", "iec", "plain").h2d_bytes * 0.9})
            for r in report.rows
        ]
        report.rows = weak
        violations = evaluate_gnn(report)
        assert any("gate" in v for v in violations)

    def test_report_round_trips_through_json(self):
        report = gnn_study(shapes=("star",), policies=("hvc",))
        clone = report.from_json(report.to_json())
        assert clone.to_json() == report.to_json()
