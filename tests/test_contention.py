"""Shared-resource contention and host-aware serialization pricing.

Three concerns, matching the ISSUE acceptance criteria:

* the **ser-rate regression**: each endpoint's host charges its *own*
  serialization rate (sender packs, receiver unpacks) — scalar and batch
  pricing must agree bitwise, including on heterogeneous-host clusters;
* **validation**: ``transfer_time`` rejects impossible inputs, empty
  batches return explicitly empty results;
* the **contended mode**: opt-in FIFO queueing on shared NICs / staging
  paths / PCIe lanes / host cores.  With the config absent or disabled,
  everything must stay bit-identical to the flat model; with it enabled,
  labels never change and runs only get slower.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import get_app
from repro.comm import CommConfig, Message, MessageHeader, Router, batch_arrays
from repro.engine import BASPEngine, BSPEngine
from repro.errors import ConfigurationError
from repro.hw import ContentionConfig, ContentionModel, bridges, tuxedo
from repro.hw.cluster import Cluster
from repro.hw.gpu import P100
from repro.hw.host import BRIDGES_HOST, HostSpec
from repro.hw.interconnect import PCIE3_X16, transfer_time
from repro.partition import partition

SETTINGS = settings(max_examples=60, deadline=None)


def msg(src, dst, n=64, scanned=0):
    return Message(
        header=MessageHeader(src=src, dst=dst, phase="reduce", field="x"),
        values=np.arange(n, dtype=np.float64),
        scanned_elements=scanned,
    )


def hetero_cluster():
    """Two hosts with *different* serialization rates, two GPUs each."""
    fast = HostSpec(name="fast", num_cores=32, dram_bytes=2**34,
                    serialization_rate=50e6)
    slow = HostSpec(name="slow", num_cores=32, dram_bytes=2**34,
                    serialization_rate=10e6)
    return Cluster(
        name="hetero",
        gpus=(P100,) * 4,
        host_of=(0, 0, 1, 1),
        hosts=(fast, slow),
    )


# --------------------------------------------------------------------------- #
# transfer_time validation + empty batches
# --------------------------------------------------------------------------- #
class TestTransferTimeValidation:
    def test_zero_messages_zero_bytes_free(self):
        assert transfer_time(PCIE3_X16, 0, num_messages=0) == 0.0

    def test_negative_messages_raise(self):
        with pytest.raises(ConfigurationError):
            transfer_time(PCIE3_X16, 100, num_messages=-1)

    def test_negative_bytes_raise(self):
        with pytest.raises(ConfigurationError):
            transfer_time(PCIE3_X16, -1, num_messages=1)

    def test_bytes_without_messages_raise(self):
        with pytest.raises(ConfigurationError):
            transfer_time(PCIE3_X16, 100, num_messages=0)


class TestEmptyBatches:
    def test_batch_arrays_empty(self):
        batch = batch_arrays([])
        assert len(batch.src) == 0
        assert batch.src.dtype == np.int64
        assert len(batch.wire_bytes) == 0

    def test_price_batch_empty(self):
        pr = Router(bridges(4)).price_batch([])
        for arr in pr:
            assert len(arr) == 0

    def test_route_step_empty(self):
        router = Router(bridges(4))
        net = router.route_step(router.price_batch([]))
        assert len(net.eff_inter) == 0
        assert net.inter_host_messages == 0
        assert net.aggregates == 0


# --------------------------------------------------------------------------- #
# contended pricing without a model: a typed error, not silent flat pricing
# --------------------------------------------------------------------------- #
class TestContendedRequiresModel:
    def test_contended_without_model_raises_typed_error(self):
        router = Router(bridges(4))  # bare platform: no contention config
        assert router.contention is None
        with pytest.raises(ConfigurationError, match="contention model"):
            router.price_batch([msg(0, 1)], contended=True)

    def test_error_message_names_the_fix(self):
        with pytest.raises(ConfigurationError, match=":contended"):
            Router(bridges(4)).price_batch([msg(0, 2)], contended=True)

    def test_empty_batch_still_catches_misconfiguration(self):
        with pytest.raises(ConfigurationError):
            Router(bridges(4)).price_batch([], contended=True)

    def test_contended_with_model_still_works(self):
        cluster = bridges(4, contention=ContentionConfig())
        pr = Router(cluster).price_batch([msg(0, 2), msg(1, 3)], contended=True)
        assert np.all(np.isfinite(pr.inter))


# --------------------------------------------------------------------------- #
# the ser-rate bugfix: sender packs at its rate, receiver unpacks at its own
# --------------------------------------------------------------------------- #
class TestHostAwareSerialization:
    def test_legs_use_endpoint_host_rates(self):
        c = hetero_cluster()
        router = Router(c)
        m = msg(0, 2)  # fast host -> slow host
        legs = router.legs(m)
        nbytes = m.wire_bytes()
        elements = m.num_elements
        assert legs.d2h == c.pcie.time(nbytes) + elements / 50e6
        assert legs.h2d == c.pcie.time(nbytes) + elements / 10e6
        # and the reverse direction swaps the rates
        back = router.legs(msg(2, 0))
        assert back.d2h == legs.h2d
        assert back.h2d == legs.d2h

    def test_batch_matches_scalar_bitwise_heterogeneous(self):
        router = Router(hetero_cluster(), volume_scale=3.0)
        messages = [
            msg(s, d, n=n, scanned=n * 2)
            for s, d, n in [(0, 1, 8), (0, 2, 64), (2, 0, 640),
                            (3, 1, 1), (1, 1, 16), (2, 3, 32)]
        ]
        vec = router.price_batch(messages)
        ref = router.price_batch_scalar(messages)
        for a, b in zip(vec, ref):
            assert np.array_equal(a, b)

    def test_batch_matches_scalar_bitwise_homogeneous(self):
        # on same-rate hosts the per-endpoint indexing must collapse to
        # the old shared-constant pricing exactly (same float divisions)
        router = Router(bridges(8), volume_scale=1.0)
        messages = [msg(s, d, n=16 + s) for s in range(8) for d in range(8)]
        vec = router.price_batch(messages)
        ref = router.price_batch_scalar(messages)
        for a, b in zip(vec, ref):
            assert np.array_equal(a, b)


# --------------------------------------------------------------------------- #
# flat equivalence: contention/hier off reproduce the flat model bitwise
# --------------------------------------------------------------------------- #
class TestFlatEquivalence:
    def test_route_step_reproduces_flat_inter(self):
        router = Router(bridges(8))
        messages = [msg(0, 1), msg(0, 2), msg(2, 3), msg(5, 0),
                    msg(4, 4), msg(7, 6), msg(1, 5)]
        pr = router.price_batch(messages)
        net = router.route_step(pr)
        assert np.array_equal(net.eff_inter, pr.inter)
        assert net.aggregates == 0
        assert net.messages_saved == 0

    def test_disabled_config_normalizes_to_none(self):
        cluster = bridges(4, contention=ContentionConfig(enabled=False))
        assert Router(cluster).contention is None

    def test_enabled_config_builds_model(self):
        cluster = bridges(4, contention=ContentionConfig())
        assert Router(cluster).contention is not None


# --------------------------------------------------------------------------- #
# ContentionModel properties
# --------------------------------------------------------------------------- #
requests = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    ),
    min_size=1, max_size=30,
)


class TestContentionModelProperties:
    @given(reqs=requests, cap=st.integers(1, 4))
    @SETTINGS
    def test_conservation_and_bounds(self, reqs, cap):
        model = ContentionModel(bridges(2), ContentionConfig(nic_servers=cap))
        key = ("nic", 0)
        for ready, service in reqs:
            start = model.acquire(key, ready, service)
            # never starts early, never finishes before the flat time
            assert start >= ready
            assert start + service >= ready + service
        stats = model.stats[key]
        assert stats.messages == len(reqs)
        assert stats.busy_s == pytest.approx(sum(s for _, s in reqs))
        assert stats.queue_s >= 0.0

    @given(reqs=requests)
    @SETTINGS
    def test_fifo_on_sorted_ready(self, reqs):
        model = ContentionModel(bridges(2), ContentionConfig())
        starts = [
            model.acquire(("nic", 0), ready, service)
            for ready, service in sorted(reqs)
        ]
        assert all(a <= b for a, b in zip(starts, starts[1:]))

    @given(reqs=requests)
    @SETTINGS
    def test_ample_capacity_never_queues(self, reqs):
        model = ContentionModel(
            bridges(2), ContentionConfig(nic_servers=len(reqs))
        )
        for ready, service in reqs:
            assert model.acquire(("nic", 0), ready, service) == ready
        assert model.stats[("nic", 0)].queue_s == 0.0

    @given(reqs=requests)
    @SETTINGS
    def test_joint_acquire_holds_both_resources(self, reqs):
        model = ContentionModel(bridges(2), ContentionConfig())
        keys = [("pcie_up", 0), ("cores", 0)]
        prev_end = 0.0
        for ready, service in sorted(reqs):
            start = model.acquire_joint(keys, ready, service)
            assert start >= ready
            # capacity-1 lane: the joint grant serializes on it
            assert start >= prev_end
            prev_end = start + service
        lane, cores = model.stats[keys[0]], model.stats[keys[1]]
        total = pytest.approx(sum(s for _, s in reqs))
        assert lane.busy_s == total
        assert cores.busy_s == total

    def test_reset_clocks_keeps_stats(self):
        model = ContentionModel(bridges(2), ContentionConfig())
        model.acquire(("nic", 0), 0.0, 1.0)
        model.acquire(("nic", 0), 0.0, 1.0)
        model.reset_clocks()
        assert model.acquire(("nic", 0), 0.0, 1.0) == 0.0  # clock forgot
        assert model.stats[("nic", 0)].messages == 3  # stats did not

    def test_invalid_capacities_raise(self):
        with pytest.raises(ConfigurationError):
            ContentionConfig(nic_servers=0)
        with pytest.raises(ConfigurationError):
            ContentionConfig(staging_servers=-1)
        with pytest.raises(ConfigurationError):
            ContentionConfig(serialization_cores=0)


# --------------------------------------------------------------------------- #
# engine-level: contended-off bit identity, contended-on sanity
# --------------------------------------------------------------------------- #
def run_engine(engine_cls, graph, ctx, cluster, **kw):
    pg = partition(graph, "cvc", cluster.num_gpus, cache=False)
    eng = engine_cls(pg, cluster, get_app("bfs"), check_memory=False, **kw)
    return eng, eng.run(ctx)


@pytest.mark.parametrize("engine_cls", [BSPEngine, BASPEngine])
class TestContendedEngines:
    def test_disabled_config_bit_identical(self, small_graph, ctx, engine_cls):
        _, flat = run_engine(engine_cls, small_graph, ctx, bridges(8))
        _, off = run_engine(
            engine_cls, small_graph, ctx,
            bridges(8, contention=ContentionConfig(enabled=False)),
        )
        assert np.array_equal(flat.labels, off.labels)
        assert flat.stats.execution_time == off.stats.execution_time
        assert flat.stats.comm_volume_bytes == off.stats.comm_volume_bytes
        assert flat.stats.num_messages == off.stats.num_messages
        assert flat.stats.min_wait == off.stats.min_wait

    def test_contended_same_labels_slower_or_equal(
        self, small_graph, ctx, engine_cls
    ):
        _, flat = run_engine(engine_cls, small_graph, ctx, bridges(8))
        eng, cont = run_engine(
            engine_cls, small_graph, ctx,
            bridges(8, contention=ContentionConfig()),
        )
        assert np.array_equal(flat.labels, cont.labels)
        if engine_cls is BSPEngine:
            # BSP's round structure is timing-independent; queueing can
            # only add waiting.  (BASP is asynchronous: later arrivals
            # legitimately reshuffle the local-round interleaving.)
            assert cont.stats.rounds == flat.stats.rounds
            assert cont.stats.execution_time >= flat.stats.execution_time
        # shared NICs saw traffic and recorded it
        stats = eng.cost.contention.stats
        assert any(k[0] == "nic" for k in stats)
        assert sum(s.busy_s for s in stats.values()) > 0.0

    def test_tuxedo_staging_queue(self, small_graph, ctx, engine_cls):
        _, flat = run_engine(engine_cls, small_graph, ctx, tuxedo(6))
        eng, cont = run_engine(
            engine_cls, small_graph, ctx,
            tuxedo(6, contention=ContentionConfig()),
        )
        assert np.array_equal(flat.labels, cont.labels)
        assert cont.stats.execution_time >= flat.stats.execution_time
        stats = eng.cost.contention.stats
        # single host: all network-stage traffic is pinned staging
        assert any(k[0] == "staging" for k in stats)
        assert not any(k[0] == "nic" for k in stats)

    def test_gpudirect_skips_host_resources(self, small_graph, ctx, engine_cls):
        eng, cont = run_engine(
            engine_cls, small_graph, ctx,
            bridges(8, gpudirect=True, contention=ContentionConfig()),
        )
        _, flat = run_engine(
            engine_cls, small_graph, ctx, bridges(8, gpudirect=True)
        )
        assert np.array_equal(flat.labels, cont.labels)
        stats = eng.cost.contention.stats
        # device-direct: no host staging, no host serialization cores
        assert not any(k[0] == "staging" for k in stats)
        assert not any(k[0] == "cores" for k in stats)


class TestContendedBatchPricing:
    def test_price_batch_contended_queues_shared_nic(self):
        cluster = bridges(4, contention=ContentionConfig())
        router = Router(cluster)
        flat = Router(bridges(4))
        # both GPUs of host 0 fire cross-host messages at once: the
        # shared port must serialize them
        messages = [msg(0, 2, n=4096), msg(1, 3, n=4096)]
        pr = router.price_batch(messages, contended=True)
        ref = flat.price_batch(messages)
        assert pr.inter.sum() > ref.inter.sum()
        assert pr.inter.min() >= ref.inter.min()

    def test_price_batch_contended_requires_opt_in(self):
        # contended=False on a contended cluster still prices flat
        cluster = bridges(4, contention=ContentionConfig())
        pr = Router(cluster).price_batch([msg(0, 2), msg(1, 3)])
        ref = Router(bridges(4)).price_batch([msg(0, 2), msg(1, 3)])
        for a, b in zip(pr, ref):
            assert np.array_equal(a, b)


# --------------------------------------------------------------------------- #
# framework plumbing
# --------------------------------------------------------------------------- #
class TestPlatformSuffix:
    def test_contended_suffix_attaches_config(self):
        from repro.frameworks.dirgl import DIrGL

        cluster = DIrGL().make_cluster(8, "bridges:contended")
        assert cluster.contention == ContentionConfig()
        assert DIrGL().make_cluster(8, "bridges").contention is None

    def test_unknown_flag_rejected(self):
        from repro.errors import UnsupportedFeatureError
        from repro.frameworks.dirgl import DIrGL

        with pytest.raises(UnsupportedFeatureError):
            DIrGL().make_cluster(8, "bridges:turbo")

    def test_dgx2_platform(self):
        from repro.frameworks.dirgl import DIrGL

        cluster = DIrGL().make_cluster(16, "dgx2")
        assert cluster.num_hosts == 1
        assert cluster.gpudirect
