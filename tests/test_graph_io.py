"""Tests for graph serialization."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    add_random_weights,
    from_edges,
    load_binary,
    load_edgelist,
    save_binary,
    save_edgelist,
)


@pytest.fixture
def g():
    return from_edges([0, 0, 1, 3], [1, 2, 3, 0], num_vertices=4)


class TestEdgelist:
    def test_roundtrip(self, g, tmp_path):
        p = tmp_path / "g.el"
        save_edgelist(g, p)
        h = load_edgelist(p, num_vertices=4)
        assert h == g

    def test_roundtrip_weighted(self, g, tmp_path):
        gw = add_random_weights(g, seed=3)
        p = tmp_path / "g.wel"
        save_edgelist(gw, p)
        h = load_edgelist(p, num_vertices=4)
        assert h == gw

    def test_comments_skipped(self, tmp_path):
        p = tmp_path / "c.el"
        p.write_text("# a comment\n0 1\n1 2\n")
        h = load_edgelist(p)
        assert h.num_edges == 2

    def test_bad_columns(self, tmp_path):
        p = tmp_path / "bad.el"
        p.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            load_edgelist(p)

    def test_empty_needs_vertex_count(self, tmp_path):
        p = tmp_path / "e.el"
        p.write_text("# nothing\n")
        with pytest.raises(GraphFormatError):
            load_edgelist(p)
        assert load_edgelist(p, num_vertices=3).num_vertices == 3


class TestBinary:
    def test_roundtrip(self, g, tmp_path):
        p = tmp_path / "g.npz"
        save_binary(g, p)
        assert load_binary(p) == g

    def test_roundtrip_weighted_and_named(self, g, tmp_path):
        gw = add_random_weights(g, seed=1)
        p = tmp_path / "g.npz"
        save_binary(gw, p)
        h = load_binary(p)
        assert h == gw

    def test_rejects_foreign_npz(self, tmp_path):
        p = tmp_path / "foreign.npz"
        np.savez(p, a=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_binary(p)
