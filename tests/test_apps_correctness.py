"""The core correctness contract: every app, on every partitioning policy,
under both execution models, matches the single-machine reference exactly
(pagerank: numerically).

This is the distributed-systems heart of the reproduction — partitioning,
proxy synchronization, invariant filtering, update tracking, and async
execution must compose without changing answers.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.apps.kcore import KCore
from repro.comm import CommConfig
from repro.engine import BASPEngine, BSPEngine
from repro.hw import bridges
from repro.partition import partition
from repro.validation import (
    pagerank_close,
    reference_bfs,
    reference_cc,
    reference_kcore_mask,
    reference_pagerank,
    reference_sssp,
)

POLICIES = ["oec", "iec", "hvc", "cvc"]


def run(app_name, graph, policy, ctx, engine_cls=BSPEngine, parts=8, **kw):
    app = get_app(app_name)
    pg = partition(graph, policy, parts)
    eng = engine_cls(pg, bridges(parts), app, check_memory=False, **kw)
    return eng.run(ctx)


# --------------------------------------------------------------------------- #
# BSP x every policy
# --------------------------------------------------------------------------- #
class TestBSPAcrossPolicies:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_bfs(self, small_graph, ctx, policy):
        res = run("bfs", small_graph, policy, ctx)
        assert np.array_equal(res.labels, reference_bfs(small_graph, ctx.source))

    @pytest.mark.parametrize("policy", POLICIES)
    def test_sssp(self, small_graph, ctx, policy):
        res = run("sssp", small_graph, policy, ctx)
        assert np.array_equal(res.labels, reference_sssp(small_graph, ctx.source))

    @pytest.mark.parametrize("policy", POLICIES)
    def test_cc(self, small_sym, ctx, policy):
        res = run("cc", small_sym, policy, ctx)
        assert np.array_equal(res.labels, reference_cc(small_sym))

    @pytest.mark.parametrize("policy", POLICIES)
    def test_kcore(self, small_sym, ctx, policy):
        res = run("kcore", small_sym, policy, ctx)
        mask = KCore.in_core(res.labels.astype(np.int64), ctx.k)
        assert np.array_equal(mask, reference_kcore_mask(small_sym, ctx.k))

    @pytest.mark.parametrize("policy", POLICIES)
    def test_pr(self, small_graph, ctx, policy):
        res = run("pr", small_graph, policy, ctx)
        ref = reference_pagerank(small_graph, tol=1e-6, max_iter=2000)
        assert pagerank_close(res.labels, ref)


# --------------------------------------------------------------------------- #
# BASP x every policy (async must not change answers)
# --------------------------------------------------------------------------- #
class TestBASPAcrossPolicies:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_bfs(self, small_graph, ctx, policy):
        res = run("bfs", small_graph, policy, ctx, engine_cls=BASPEngine)
        assert np.array_equal(res.labels, reference_bfs(small_graph, ctx.source))

    @pytest.mark.parametrize("policy", POLICIES)
    def test_sssp(self, small_graph, ctx, policy):
        res = run("sssp", small_graph, policy, ctx, engine_cls=BASPEngine)
        assert np.array_equal(res.labels, reference_sssp(small_graph, ctx.source))

    @pytest.mark.parametrize("policy", POLICIES)
    def test_cc(self, small_sym, ctx, policy):
        res = run("cc", small_sym, policy, ctx, engine_cls=BASPEngine)
        assert np.array_equal(res.labels, reference_cc(small_sym))

    @pytest.mark.parametrize("policy", POLICIES)
    def test_kcore(self, small_sym, ctx, policy):
        res = run("kcore", small_sym, policy, ctx, engine_cls=BASPEngine)
        mask = KCore.in_core(res.labels.astype(np.int64), ctx.k)
        assert np.array_equal(mask, reference_kcore_mask(small_sym, ctx.k))

    @pytest.mark.parametrize("policy", ["cvc", "iec"])
    def test_pr(self, small_graph, ctx, policy):
        res = run("pr", small_graph, policy, ctx, engine_cls=BASPEngine)
        ref = reference_pagerank(small_graph, tol=1e-6, max_iter=2000)
        assert pagerank_close(res.labels, ref)


# --------------------------------------------------------------------------- #
# communication configs must not change answers
# --------------------------------------------------------------------------- #
class TestCommConfigsPreserveAnswers:
    @pytest.mark.parametrize(
        "cfg",
        [
            CommConfig(update_only=False),
            CommConfig(update_only=False, memoize_addresses=False),
            CommConfig(invariant_filtering=False),
        ],
        ids=["AS", "AS+explicit-ids", "no-invariant-filter"],
    )
    def test_bfs_all_configs(self, small_graph, ctx, cfg):
        res = run("bfs", small_graph, "cvc", ctx, comm_config=cfg)
        assert np.array_equal(res.labels, reference_bfs(small_graph, ctx.source))

    @pytest.mark.parametrize(
        "cfg",
        [CommConfig(update_only=False), CommConfig(invariant_filtering=False)],
        ids=["AS", "no-invariant-filter"],
    )
    def test_pr_all_configs(self, small_graph, ctx, cfg):
        res = run("pr", small_graph, "cvc", ctx, comm_config=cfg)
        ref = reference_pagerank(small_graph, tol=1e-6, max_iter=2000)
        assert pagerank_close(res.labels, ref)

    @pytest.mark.parametrize(
        "cfg",
        [CommConfig(update_only=False), CommConfig(invariant_filtering=False)],
        ids=["AS", "no-invariant-filter"],
    )
    def test_kcore_all_configs(self, small_sym, ctx, cfg):
        res = run("kcore", small_sym, "hvc", ctx, comm_config=cfg)
        mask = KCore.in_core(res.labels.astype(np.int64), ctx.k)
        assert np.array_equal(mask, reference_kcore_mask(small_sym, ctx.k))


# --------------------------------------------------------------------------- #
# framework-specific algorithm variants
# --------------------------------------------------------------------------- #
class TestVariantAlgorithms:
    def test_direction_optimizing_bfs(self, small_graph, ctx):
        res = run("bfs-do", small_graph, "random", ctx)
        assert np.array_equal(res.labels, reference_bfs(small_graph, ctx.source))

    def test_pointer_jumping_cc(self, small_sym, ctx):
        res = run("cc-pj", small_sym, "metis-like", ctx)
        assert np.array_equal(res.labels, reference_cc(small_sym))

    def test_pointer_jumping_converges_in_fewer_rounds(self, small_sym, ctx):
        plain = run("cc", small_sym, "metis-like", ctx)
        pj = run("cc-pj", small_sym, "metis-like", ctx)
        assert pj.stats.rounds <= plain.stats.rounds

    def test_pr_push(self, small_graph, ctx):
        res = run("pr-push", small_graph, "oec", ctx)
        ref = reference_pagerank(small_graph, tol=1e-6, max_iter=2000)
        # residual push leaves <= tol unapplied residual per vertex
        assert pagerank_close(res.labels, ref, rtol=1e-2)

    def test_single_partition_trivial(self, small_graph, ctx):
        res = run("bfs", small_graph, "oec", ctx, parts=1)
        assert np.array_equal(res.labels, reference_bfs(small_graph, ctx.source))


# --------------------------------------------------------------------------- #
# different GPU counts
# --------------------------------------------------------------------------- #
class TestScaleInvariance:
    @pytest.mark.parametrize("parts", [2, 4, 16, 32])
    def test_bfs_any_scale(self, small_graph, ctx, parts):
        res = run("bfs", small_graph, "cvc", ctx, parts=parts)
        assert np.array_equal(res.labels, reference_bfs(small_graph, ctx.source))

    @pytest.mark.parametrize("parts", [2, 16])
    def test_kcore_any_scale(self, small_sym, ctx, parts):
        res = run("kcore", small_sym, "cvc", ctx, parts=parts)
        mask = KCore.in_core(res.labels.astype(np.int64), ctx.k)
        assert np.array_equal(mask, reference_kcore_mask(small_sym, ctx.k))
