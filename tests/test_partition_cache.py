"""Tests for the content-hash partition cache (memory LRU + disk store)."""

import os

import numpy as np
import pytest

from repro.generators import rmat
from repro.graph import from_edges
from repro.partition import partition
from repro.partition.cache import PartitionCache, clear, configure, get_cache
from repro.partition.cusp import POLICIES


@pytest.fixture(scope="module")
def g():
    return rmat(8, edge_factor=8, seed=5)


@pytest.fixture
def restore_global_cache():
    """Leave the process-wide cache as other tests expect it (in-memory
    only); ``configure`` also zeroes the accumulated stats."""
    yield
    configure(cache_dir=None)


def _counting_builder(policy):
    calls = []

    def builder(graph, num_partitions):
        calls.append((policy, num_partitions))
        return POLICIES[policy](graph, num_partitions)

    return builder, calls


def _assert_partitions_equal(a, b):
    assert a.policy == b.policy
    assert a.grid == b.grid
    np.testing.assert_array_equal(a.vertex_owner, b.vertex_owner)
    assert len(a.parts) == len(b.parts)
    for pa, pb in zip(a.parts, b.parts):
        assert pa.pid == pb.pid
        np.testing.assert_array_equal(pa.local_to_global, pb.local_to_global)
        np.testing.assert_array_equal(pa.global_to_local, pb.global_to_local)
        np.testing.assert_array_equal(pa.is_master, pb.is_master)
        np.testing.assert_array_equal(pa.graph.indptr, pb.graph.indptr)
        np.testing.assert_array_equal(pa.graph.indices, pb.graph.indices)
        for ea, eb in zip(pa.mirror_exchange, pb.mirror_exchange):
            np.testing.assert_array_equal(ea, eb)
        for ea, eb in zip(pa.master_exchange, pb.master_exchange):
            np.testing.assert_array_equal(ea, eb)


class TestMemoryLRU:
    def test_second_lookup_hits_memory(self, g):
        cache = PartitionCache()
        builder, calls = _counting_builder("oec")
        p1 = cache.lookup_or_build(g, "oec", 4, builder)
        p2 = cache.lookup_or_build(g, "oec", 4, builder)
        assert p1 is p2
        assert calls == [("oec", 4)]
        assert cache.stats.builds == 1
        assert cache.stats.memory_hits == 1

    def test_distinct_keys_do_not_collide(self, g):
        cache = PartitionCache()
        builder, calls = _counting_builder("oec")
        cache.lookup_or_build(g, "oec", 2, builder)
        cache.lookup_or_build(g, "oec", 4, builder)
        assert calls == [("oec", 2), ("oec", 4)]
        assert len(cache) == 2

    def test_lru_evicts_oldest(self, g):
        cache = PartitionCache(max_entries=2)
        builder, calls = _counting_builder("oec")
        for parts in (2, 3, 4):
            cache.lookup_or_build(g, "oec", parts, builder)
        assert len(cache) == 2
        # the first key was evicted, so it rebuilds; the last two do not
        cache.lookup_or_build(g, "oec", 2, builder)
        cache.lookup_or_build(g, "oec", 4, builder)
        assert calls == [("oec", p) for p in (2, 3, 4, 2)]

    def test_content_hash_keying(self, g):
        # a graph rebuilt from the same edges has the same key; a graph
        # with one extra edge does not
        src, dst = [0, 1, 2, 2], [1, 2, 0, 3]
        g1 = from_edges(src, dst, num_vertices=4)
        g2 = from_edges(src, dst, num_vertices=4)
        g3 = from_edges(src + [3], dst + [0], num_vertices=4)
        assert PartitionCache.key_for(g1, "oec", 2) == PartitionCache.key_for(
            g2, "oec", 2
        )
        assert PartitionCache.key_for(g1, "oec", 2) != PartitionCache.key_for(
            g3, "oec", 2
        )


class TestDiskStore:
    def test_round_trip(self, g, tmp_path):
        store = str(tmp_path / "pcache")
        writer = PartitionCache(cache_dir=store)
        builder, calls = _counting_builder("cvc")
        built = writer.lookup_or_build(g, "cvc", 4, builder)
        assert writer.stats.stores == 1

        # a fresh cache (fresh process, conceptually) loads from disk
        reader = PartitionCache(cache_dir=store)
        loaded = reader.lookup_or_build(g, "cvc", 4, builder)
        assert calls == [("cvc", 4)]
        assert reader.stats.builds == 0
        assert reader.stats.disk_hits == 1
        loaded.validate()
        _assert_partitions_equal(built, loaded)

    def test_corrupt_file_rebuilds(self, g, tmp_path):
        store = str(tmp_path / "pcache")
        cache = PartitionCache(cache_dir=store)
        builder, calls = _counting_builder("oec")
        cache.lookup_or_build(g, "oec", 4, builder)

        path = cache._disk_path(PartitionCache.key_for(g, "oec", 4))
        with open(path, "wb") as f:
            f.write(b"not an npz file")

        fresh = PartitionCache(cache_dir=store)
        pg = fresh.lookup_or_build(g, "oec", 4, builder)
        assert fresh.stats.disk_hits == 0
        assert fresh.stats.builds == 1
        pg.validate()

    def test_store_failure_is_best_effort(self, g, tmp_path, monkeypatch):
        cache = PartitionCache(cache_dir=str(tmp_path / "pcache"))

        def boom(*a, **kw):
            raise OSError("disk full")

        monkeypatch.setattr("repro.partition.cache.tempfile.mkstemp", boom)
        builder, _ = _counting_builder("oec")
        pg = cache.lookup_or_build(g, "oec", 2, builder)  # must not raise
        pg.validate()
        assert cache.stats.stores == 0


class TestGlobalCache:
    def test_partition_uses_global_cache(self, g, restore_global_cache):
        configure(cache_dir=None)
        p1 = partition(g, "iec", 4)
        p2 = partition(g, "iec", 4)
        assert p1 is p2
        assert get_cache().stats.memory_hits >= 1

    def test_cache_false_bypasses(self, g, restore_global_cache):
        configure(cache_dir=None)
        p1 = partition(g, "iec", 4, cache=False)
        p2 = partition(g, "iec", 4, cache=False)
        assert p1 is not p2
        assert get_cache().stats.builds == 0
        assert len(get_cache()) == 0

    def test_configure_sets_disk_store(self, g, tmp_path, restore_global_cache):
        configure(cache_dir=str(tmp_path / "store"))
        partition(g, "oec", 2)
        assert get_cache().stats.stores == 1
        assert any((tmp_path / "store").iterdir())

    def test_clear_resets_counters(self, g, restore_global_cache):
        configure(cache_dir=None)
        partition(g, "oec", 2)
        assert get_cache().stats.builds == 1
        clear()
        assert len(get_cache()) == 0
        assert get_cache().stats.builds == 0


class TestShardSpill:
    def test_shard_round_trip(self, g, tmp_path):
        store = str(tmp_path / "pcache")
        writer = PartitionCache(cache_dir=store, spill_shards=True)
        builder, calls = _counting_builder("iec")
        built = writer.lookup_or_build(g, "iec", 4, builder)
        path = writer._disk_path(PartitionCache.key_for(g, "iec", 4))
        assert path.endswith(".shards")
        assert os.path.isdir(path)

        reader = PartitionCache(cache_dir=store, spill_shards=True)
        loaded = reader.lookup_or_build(g, "iec", 4, builder)
        assert calls == [("iec", 4)]
        assert reader.stats.disk_hits == 1
        loaded.validate()
        _assert_partitions_equal(built, loaded)

    def test_shard_formats_do_not_collide(self, g, tmp_path):
        """A shard cache and an npz cache in the same directory address
        different entries, so flipping the flag never misloads."""
        store = str(tmp_path / "pcache")
        builder, calls = _counting_builder("iec")
        PartitionCache(cache_dir=store, spill_shards=True).lookup_or_build(
            g, "iec", 2, builder
        )
        PartitionCache(cache_dir=store).lookup_or_build(g, "iec", 2, builder)
        assert len(calls) == 2

    def test_corrupt_shard_dir_rebuilds(self, g, tmp_path):
        store = str(tmp_path / "pcache")
        cache = PartitionCache(cache_dir=store, spill_shards=True)
        builder, _ = _counting_builder("iec")
        cache.lookup_or_build(g, "iec", 2, builder)
        path = cache._disk_path(PartitionCache.key_for(g, "iec", 2))
        for name in os.listdir(path):
            os.unlink(os.path.join(path, name))

        fresh = PartitionCache(cache_dir=store, spill_shards=True)
        pg = fresh.lookup_or_build(g, "iec", 2, builder)
        assert fresh.stats.disk_hits == 0
        assert fresh.stats.builds == 1
        pg.validate()


class TestDiskByteCap:
    def _entry(self, cache, g, parts):
        return cache._disk_path(PartitionCache.key_for(g, "oec", parts))

    def test_lru_prune_evicts_oldest(self, g, tmp_path):
        store = str(tmp_path / "pcache")
        cache = PartitionCache(cache_dir=store)
        builder, _ = _counting_builder("oec")
        cache.lookup_or_build(g, "oec", 2, builder)
        cache.lookup_or_build(g, "oec", 4, builder)
        first = self._entry(cache, g, 2)
        second = self._entry(cache, g, 4)
        # budget: the recently-used entry fits, the stale one does not
        cache.max_disk_bytes = os.path.getsize(second) + 64
        os.utime(first, (1, 1))  # unambiguously least recently used
        cache._prune_disk()
        assert not os.path.exists(first)
        assert os.path.exists(second)
        assert cache.stats.pruned == 1

    def test_disk_hit_refreshes_recency(self, g, tmp_path):
        store = str(tmp_path / "pcache")
        cache = PartitionCache(cache_dir=store)
        builder, _ = _counting_builder("oec")
        cache.lookup_or_build(g, "oec", 2, builder)
        first = self._entry(cache, g, 2)
        os.utime(first, (1, 1))
        # a fresh cache's disk hit touches the entry back to "now"
        warm = PartitionCache(cache_dir=store)
        warm.lookup_or_build(g, "oec", 2, builder)
        assert os.path.getmtime(first) > 1

    def test_unbounded_cache_never_prunes(self, g, tmp_path):
        cache = PartitionCache(cache_dir=str(tmp_path / "pcache"))
        builder, _ = _counting_builder("oec")
        cache.lookup_or_build(g, "oec", 2, builder)
        cache.lookup_or_build(g, "oec", 4, builder)
        assert cache.stats.pruned == 0
        assert os.path.exists(self._entry(cache, g, 2))
        assert os.path.exists(self._entry(cache, g, 4))


class TestCoarseClockRecency:
    """Disk-LRU recency on coarse-mtime filesystems.

    A refresh that lands on the *same* timestamp as a stale sibling must
    still outrank it.  Pre-fix, the prune walk sorted purely by mtime and
    broke ties by name, so a just-refreshed entry whose name sorted first
    was evicted ahead of the genuinely stale one.  The injected frozen
    clock is the worst possible coarseness: time never advances at all.
    """

    def test_refresh_survives_prune_despite_frozen_clock(self, g, tmp_path):
        frozen = 1_000_000.0
        store = str(tmp_path / "pcache")
        cache = PartitionCache(cache_dir=store, clock=lambda: frozen)
        builder, _ = _counting_builder("oec")
        cache.lookup_or_build(g, "oec", 2, builder)
        cache.lookup_or_build(g, "oec", 4, builder)
        paths = {
            parts: cache._disk_path(PartitionCache.key_for(g, "oec", parts))
            for parts in (2, 4)
        }
        for p in paths.values():
            assert os.path.getmtime(p) == frozen  # both stores tied
        # refresh whichever entry the name tiebreak would evict first, so
        # a recency-blind sort provably picks the wrong victim
        hot_parts = min(paths, key=lambda k: os.path.basename(paths[k]))
        refreshed = paths[hot_parts]
        stale = paths[4 if hot_parts == 2 else 2]
        cache.clear_memory()
        assert cache.get(g, "oec", hot_parts) is not None  # disk hit
        assert os.path.getmtime(refreshed) > frozen  # strictly advanced
        cache.max_disk_bytes = os.path.getsize(refreshed) + 64
        cache._prune_disk()
        assert os.path.exists(refreshed)
        assert not os.path.exists(stale)
        assert cache.stats.pruned == 1

    def test_touch_strictly_advances_past_ties(self, g, tmp_path):
        frozen = 500.0
        cache = PartitionCache(
            cache_dir=str(tmp_path / "pcache"), clock=lambda: frozen
        )
        builder, _ = _counting_builder("oec")
        cache.lookup_or_build(g, "oec", 2, builder)
        path = cache._disk_path(PartitionCache.key_for(g, "oec", 2))
        assert os.path.getmtime(path) == frozen
        cache._touch(path)
        first = os.path.getmtime(path)
        cache._touch(path)
        assert first > frozen
        assert os.path.getmtime(path) > first


class TestConcurrentEvictionRaces:
    """A sibling worker can evict shared-store entries at any moment;
    every disk probe must degrade to a miss, never an exception."""

    def _warm(self, g, tmp_path):
        store = str(tmp_path / "pcache")
        cache = PartitionCache(cache_dir=store)
        builder, calls = _counting_builder("oec")
        cache.lookup_or_build(g, "oec", 2, builder)
        path = cache._disk_path(PartitionCache.key_for(g, "oec", 2))
        return cache, builder, calls, path

    def test_entry_vanishing_mid_load_is_a_clean_miss(
        self, g, tmp_path, monkeypatch
    ):
        cache, builder, calls, path = self._warm(g, tmp_path)
        cache.clear_memory()

        import repro.partition.cache as mod

        def vanishing_load(p, graph):
            os.unlink(path)  # the sibling's prune wins the race
            raise FileNotFoundError(p)

        monkeypatch.setattr(mod, "load_partitions", vanishing_load)
        pg = cache.lookup_or_build(g, "oec", 2, builder)
        assert pg is not None
        assert len(calls) == 2  # rebuilt, not crashed

    def test_prune_skips_entry_deleted_mid_walk(
        self, g, tmp_path, monkeypatch
    ):
        cache, builder, _, path = self._warm(g, tmp_path)
        cache.lookup_or_build(g, "oec", 4, builder)
        cache.max_disk_bytes = 1  # everything is over budget

        real_getmtime = os.path.getmtime

        def racing_getmtime(p):
            if p == path and os.path.exists(p):
                os.unlink(p)  # sibling evicts it between listdir and stat
            return real_getmtime(p)

        monkeypatch.setattr(os.path, "getmtime", racing_getmtime)
        cache._prune_disk()  # must not raise
        assert not os.path.exists(path)

    def test_entry_nbytes_of_vanished_entry_is_zero(self, tmp_path):
        assert PartitionCache._entry_nbytes(str(tmp_path / "gone.npz")) == 0

    def test_prune_survives_cache_dir_removal(self, g, tmp_path):
        import shutil

        cache, _, _, _ = self._warm(g, tmp_path)
        cache.max_disk_bytes = 1
        shutil.rmtree(cache.cache_dir)
        cache._prune_disk()  # must not raise


class TestPutGet:
    def test_get_returns_none_on_cold_cache(self, g):
        assert PartitionCache().get(g, "oec", 2) is None

    def test_put_then_get_round_trips(self, g, tmp_path):
        store = str(tmp_path / "pcache")
        cache = PartitionCache(cache_dir=store)
        pg = POLICIES["oec"](g, 2)
        cache.put(g, "oec", 2, pg)
        assert cache.get(g, "oec", 2) is pg  # memory hit
        # a sibling cache sees it through the shared disk store
        warm = PartitionCache(cache_dir=store)
        _assert_partitions_equal(warm.get(g, "oec", 2), pg)
        assert warm.stats.disk_hits == 1

    def test_planted_entry_preempts_the_builder(self, g, tmp_path):
        store = str(tmp_path / "pcache")
        cache = PartitionCache(cache_dir=store)
        pg = POLICIES["oec"](g, 2)
        cache.put(g, "oec", 2, pg)
        builder, calls = _counting_builder("oec")
        got = cache.lookup_or_build(g, "oec", 2, builder)
        assert got is pg
        assert calls == []  # the serve patch path short-circuits builds

    def test_get_touches_disk_recency(self, g, tmp_path):
        store = str(tmp_path / "pcache")
        cache = PartitionCache(cache_dir=store)
        pg = POLICIES["oec"](g, 2)
        cache.put(g, "oec", 2, pg)
        path = cache._disk_path(PartitionCache.key_for(g, "oec", 2))
        os.utime(path, (1, 1))
        warm = PartitionCache(cache_dir=store)
        warm.get(g, "oec", 2)
        assert os.path.getmtime(path) > 1
