"""Tests for the XtraPulp-like partitioner and partition serialization."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, PartitioningError
from repro.generators import rmat, webcrawl
from repro.partition import (
    load_partitions,
    partition,
    partition_stats,
    save_partitions,
    xtrapulp_like,
)


@pytest.fixture(scope="module")
def crawl():
    return webcrawl(3000, 12.0, seed=2)


class TestXtraPulpLike:
    def test_valid_partitioning(self, crawl):
        pg = xtrapulp_like(crawl, 8)
        pg.validate()

    def test_balance_constraint_respected(self, crawl):
        pg = xtrapulp_like(crawl, 8, imbalance=1.10)
        s = partition_stats(pg)
        assert s.static_balance <= 1.25  # slack for seed imbalance

    def test_locality_beats_blocked_iec_on_crawl(self, crawl):
        xp = partition_stats(xtrapulp_like(crawl, 8))
        iec = partition_stats(partition(crawl, "iec", 8, cache=False))
        assert xp.replication_factor < iec.replication_factor

    def test_more_sweeps_do_not_hurt_cut(self, crawl):
        one = partition_stats(xtrapulp_like(crawl, 8, sweeps=1))
        three = partition_stats(xtrapulp_like(crawl, 8, sweeps=3))
        assert three.replication_factor <= one.replication_factor * 1.02

    def test_registered_policy(self, crawl):
        pg = partition(crawl, "xtrapulp-like", 4, cache=False)
        assert pg.policy == "xtrapulp-like"

    def test_runs_through_engine(self, crawl):
        from repro.apps import get_app
        from repro.engine import BSPEngine, RunContext
        from repro.hw import bridges
        from repro.validation import reference_bfs

        src = int(np.argmax(crawl.out_degrees()))
        ctx = RunContext(
            num_global_vertices=crawl.num_vertices, source=src,
            global_out_degrees=crawl.out_degrees(),
        )
        pg = partition(crawl, "xtrapulp-like", 8, cache=False)
        res = BSPEngine(
            pg, bridges(8), get_app("bfs"), check_memory=False
        ).run(ctx)
        assert np.array_equal(res.labels, reference_bfs(crawl, src))


class TestPartitionIO:
    def test_roundtrip(self, crawl, tmp_path):
        pg = partition(crawl, "cvc", 8, cache=False)
        path = tmp_path / "parts.npz"
        save_partitions(pg, path)
        pg2 = load_partitions(path, crawl)
        pg2.validate()
        assert pg2.policy == "cvc"
        assert pg2.grid == pg.grid
        assert pg2.replication_factor == pg.replication_factor
        for a, b in zip(pg.parts, pg2.parts):
            assert a.graph == b.graph
            assert np.array_equal(a.local_to_global, b.local_to_global)
            assert np.array_equal(a.is_master, b.is_master)
            assert set(a.mirror_exchange) == set(b.mirror_exchange)

    def test_loaded_partitions_run(self, crawl, tmp_path):
        from repro.apps import get_app
        from repro.engine import BSPEngine, RunContext
        from repro.hw import bridges
        from repro.validation import reference_bfs

        pg = partition(crawl, "hvc", 4, cache=False)
        path = tmp_path / "parts.npz"
        save_partitions(pg, path)
        pg2 = load_partitions(path, crawl)
        src = int(np.argmax(crawl.out_degrees()))
        ctx = RunContext(
            num_global_vertices=crawl.num_vertices, source=src,
            global_out_degrees=crawl.out_degrees(),
        )
        res = BSPEngine(
            pg2, bridges(4), get_app("bfs"), check_memory=False
        ).run(ctx)
        assert np.array_equal(res.labels, reference_bfs(crawl, src))

    def test_rejects_wrong_graph(self, crawl, tmp_path):
        pg = partition(crawl, "oec", 4, cache=False)
        path = tmp_path / "parts.npz"
        save_partitions(pg, path)
        other = rmat(8, edge_factor=4, seed=9)
        with pytest.raises(PartitioningError):
            load_partitions(path, other)

    def test_rejects_foreign_file(self, crawl, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, a=np.arange(4))
        with pytest.raises(GraphFormatError):
            load_partitions(path, crawl)

    def test_weighted_partitions_roundtrip(self, tmp_path):
        from repro.graph.transform import add_random_weights

        g = add_random_weights(rmat(8, edge_factor=6, seed=1), seed=0)
        pg = partition(g, "oec", 4, cache=False)
        path = tmp_path / "w.npz"
        save_partitions(pg, path)
        pg2 = load_partitions(path, g)
        assert all(p.graph.has_weights for p in pg2.parts if p.graph.num_edges)
