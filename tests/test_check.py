"""Unit tests for the runtime invariant checkers (repro.check).

Positive direction: real structures pass at FULL.  Negative direction:
each checker fires on a deliberately corrupted structure — a checker
that cannot fail protects nothing (the fuzz-harness mutation suite
covers the end-to-end routes; these tests pin the unit contracts).
"""

import numpy as np
import pytest

from repro.check import (
    CheckLevel,
    MonotoneWatch,
    check_comm_structure,
    check_final_stats,
    check_partition,
    check_partition_request,
    check_post_sync,
    check_round_record,
    current_check_level,
    parse_check_level,
    use_check_level,
)
from repro.comm import CommConfig, FieldSpec, GluonComm
from repro.errors import ConfigurationError, InvariantViolation
from repro.generators.rmat import rmat
from repro.metrics.stats import RoundRecord
from repro.partition import POLICIES, partition


@pytest.fixture(scope="module")
def graph():
    from repro.graph.transform import add_random_weights

    return add_random_weights(rmat(6, edge_factor=8, seed=5), seed=0)


def fresh_pg(graph, policy="cvc", parts=4):
    pg = partition(graph, policy, parts, cache=False)
    pg.__dict__.pop("_check_level_done", None)
    return pg


# --------------------------------------------------------------------- #
# levels
# --------------------------------------------------------------------- #
def test_parse_levels():
    assert parse_check_level("off") is CheckLevel.OFF
    assert parse_check_level("cheap") is CheckLevel.CHEAP
    assert parse_check_level("full") is CheckLevel.FULL
    assert parse_check_level(CheckLevel.FULL) is CheckLevel.FULL
    assert parse_check_level(2) is CheckLevel.FULL
    assert not CheckLevel.OFF  # zero-overhead guards rely on falsiness
    assert CheckLevel.CHEAP and CheckLevel.FULL


def test_parse_level_rejects_garbage():
    with pytest.raises(ConfigurationError):
        parse_check_level("loud")
    with pytest.raises(ConfigurationError):
        parse_check_level(7)


def test_use_check_level_scopes_ambient():
    assert current_check_level() is CheckLevel.OFF
    with use_check_level("full"):
        assert current_check_level() is CheckLevel.FULL
        with use_check_level("cheap"):
            assert current_check_level() is CheckLevel.CHEAP
        assert current_check_level() is CheckLevel.FULL
    assert current_check_level() is CheckLevel.OFF


# --------------------------------------------------------------------- #
# partition checkers
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_every_policy_passes_full(graph, policy):
    check_partition(fresh_pg(graph, policy), CheckLevel.FULL)


def test_partition_check_memoized(graph):
    pg = fresh_pg(graph)
    check_partition(pg, CheckLevel.FULL)
    # corrupt after the check: the memo stamp must skip the recheck...
    part = next(p for p in pg.parts if not p.is_master.all())
    victim = int(np.flatnonzero(~part.is_master)[0])
    part.is_master[victim] = True
    check_partition(pg, CheckLevel.FULL)  # stamped: no raise
    # ...and a fresh stamp must catch the corruption
    pg.__dict__.pop("_check_level_done")
    with pytest.raises(InvariantViolation):
        check_partition(pg, CheckLevel.FULL)


def test_master_flag_corruption_detected(graph):
    pg = fresh_pg(graph)
    part = next(p for p in pg.parts if not p.is_master.all())
    part.is_master[int(np.flatnonzero(~part.is_master)[0])] = True
    with pytest.raises(InvariantViolation):
        check_partition(pg, CheckLevel.CHEAP)


def test_exchange_order_corruption_detected(graph):
    pg = fresh_pg(graph)
    part = next(
        p for p in pg.parts
        if any(len(v) > 1 for v in p.mirror_exchange.values())
    )
    q = next(k for k, v in part.mirror_exchange.items() if len(v) > 1)
    part.mirror_exchange[q] = part.mirror_exchange[q][::-1].copy()
    with pytest.raises(InvariantViolation):
        check_partition(pg, CheckLevel.CHEAP)


def test_partition_request_mismatch_detected(graph):
    pg = fresh_pg(graph, "oec", 4)
    check_partition_request(pg, "oec", 4)
    with pytest.raises(InvariantViolation) as exc:
        check_partition_request(pg, "oec", 2)
    assert exc.value.checker == "partition-request"
    with pytest.raises(InvariantViolation):
        check_partition_request(pg, "iec", 4)


def test_edge_multiset_corruption_detected(graph):
    pg = fresh_pg(graph)
    part = next(p for p in pg.parts if p.graph.num_edges > 0)
    indices = part.graph.indices
    indices.setflags(write=True)  # CSR arrays are frozen; corrupt in place
    indices[0] = (indices[0] + 1) % part.num_local
    with pytest.raises(InvariantViolation):
        check_partition(pg, CheckLevel.FULL)


# --------------------------------------------------------------------- #
# comm checkers
# --------------------------------------------------------------------- #
def _bfs_field():
    return FieldSpec(name="dist", dtype=np.uint32, reduce_op="min",
                     read_at="src", write_at="dst",
                     identity=np.iinfo(np.uint32).max)


def test_comm_structure_passes_and_detects_table_skew(graph):
    pg = fresh_pg(graph)
    comm = GluonComm(pg, [_bfs_field()], CommConfig(), check="cheap")
    # constructed clean at CHEAP; now skew a send-table offset
    table = next(
        t for t in comm._tables["dist"][0] if t is not None
    )
    table.offsets[-1] += 1
    pg.__dict__.pop("_gluon_plans_checked", None)
    with pytest.raises(InvariantViolation) as exc:
        check_comm_structure(comm)
    assert exc.value.checker == "send-table"


def test_post_sync_dominance_detected(graph):
    pg = fresh_pg(graph)
    comm = GluonComm(pg, [_bfs_field()], CommConfig(), check="off")
    labels = [
        np.full(p.num_local, 7, dtype=np.uint32) for p in pg.parts
    ]
    check_post_sync(comm, "dist", labels)  # uniform: trivially dominated
    (r, m), plan = next(iter(sorted(comm._plans["dist"][0].items())))
    labels[r][plan.send_idx[0]] = 0  # mirror below its master: min broken
    with pytest.raises(InvariantViolation) as exc:
        check_post_sync(comm, "dist", labels)
    assert exc.value.checker.startswith("post-sync")


def test_field_identity_neutrality_detected(graph):
    pg = fresh_pg(graph, "oec", 2)
    bad = FieldSpec(name="acc", dtype=np.float64, reduce_op="add",
                    read_at="src", write_at="dst", identity=1.0,
                    reset_after_reduce=True)
    with pytest.raises(InvariantViolation) as exc:
        GluonComm(pg, [bad], CommConfig(), check="cheap")
    assert exc.value.checker == "field-identity"


# --------------------------------------------------------------------- #
# engine checkers
# --------------------------------------------------------------------- #
def _record(**over):
    base = dict(
        round_index=0, active_vertices=3, edges_processed=9, messages=2,
        comm_bytes=64.0, compute_times=np.asarray([0.1, 0.2]),
        wait_times=np.asarray([0.0, 0.1]),
        device_comm_times=np.asarray([0.01, 0.01]), duration=0.5,
    )
    base.update(over)
    return RoundRecord(**base)


def test_round_record_passes_then_fires():
    check_round_record(_record())
    with pytest.raises(InvariantViolation):
        check_round_record(_record(compute_times=np.asarray([-0.1, 0.2])))
    with pytest.raises(InvariantViolation):
        check_round_record(_record(duration=0.05))  # < slowest compute
    with pytest.raises(InvariantViolation):
        check_round_record(_record(messages=-1))
    with pytest.raises(InvariantViolation):
        check_round_record(_record(duration=float("nan")))


def test_final_stats_checker(graph):
    from repro.apps import get_app
    from repro.engine import BSPEngine, RunContext
    from repro.hw import bridges

    pg = fresh_pg(graph, "oec", 2)
    ctx = RunContext(
        num_global_vertices=graph.num_vertices,
        source=int(np.argmax(graph.out_degrees())),
    )
    res = BSPEngine(pg, bridges(2), get_app("bfs"), check_memory=False).run(ctx)
    check_final_stats(res.stats)
    res.stats.execution_time = -1.0
    with pytest.raises(InvariantViolation):
        check_final_stats(res.stats)
    res.stats.execution_time = 1.0
    res.stats.local_rounds_min = res.stats.local_rounds_max + 1
    with pytest.raises(InvariantViolation):
        check_final_stats(res.stats)


def test_monotone_watch():
    watch = MonotoneWatch([_bfs_field()], num_partitions=2)
    assert watch.watched_fields == ["dist"]
    views = {"dist": [np.asarray([9, 9]), np.asarray([9, 9])]}
    watch.observe(views)
    views["dist"][0] = np.asarray([3, 9])  # decreasing: fine for min
    watch.observe(views)
    views["dist"][0] = np.asarray([3, 9])
    views["dist"][1] = np.asarray([9, 12])  # increased: violation
    with pytest.raises(InvariantViolation) as exc:
        watch.observe(views)
    assert exc.value.checker == "label-monotonicity"


def test_monotone_watch_skips_accumulators():
    acc = FieldSpec(name="resid", dtype=np.float64, reduce_op="add",
                    read_at="src", write_at="dst", identity=0.0,
                    reset_after_reduce=True)
    watch = MonotoneWatch([acc, _bfs_field()], num_partitions=1)
    assert watch.watched_fields == ["dist"]  # add/reset fields exempt


# --------------------------------------------------------------------- #
# end to end: a checked run is identical to an unchecked one
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("engine_name", ["bsp", "basp"])
def test_checked_run_matches_unchecked(graph, engine_name):
    from repro.apps import get_app
    from repro.engine import BASPEngine, BSPEngine, RunContext
    from repro.hw import bridges

    cls = {"bsp": BSPEngine, "basp": BASPEngine}[engine_name]
    ctx = RunContext(
        num_global_vertices=graph.num_vertices,
        source=int(np.argmax(graph.out_degrees())),
    )
    pg = partition(graph, "cvc", 4, cache=False)
    plain = cls(pg, bridges(4), get_app("sssp"), check_memory=False).run(ctx)
    pg.__dict__.pop("_check_level_done", None)
    checked = cls(
        pg, bridges(4), get_app("sssp"), check_memory=False, check="full"
    ).run(ctx)
    assert np.array_equal(plain.labels, checked.labels)
    assert plain.stats.rounds == checked.stats.rounds
