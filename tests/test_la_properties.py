"""Property-based tests for the LA core (hypothesis).

Three families:

1. **Semiring axioms** — the add monoid's identity is neutral and its
   operation associative; the multiplicative annihilator annihilates.
   Exact where the algebra is exact (min/or on any dtype, add on ints),
   tolerance-based only where float addition makes bitwise associativity
   mathematically false.
2. **Masked SpMSpV vs a dense reference** — ``spmsv_push`` on random CSR
   graphs must equal an edge-by-edge scalar reference *exactly*, mask
   and structural complement included.  The reference walks edges in the
   same expansion order, which is exactly the order-sensitivity contract
   ``np.add.at`` (and docs/kernels.md) defines.
3. **Push/pull duality** — at every frontier density (every prefix of
   the vertex set, empty through full) a push scatter and a
   frontier-masked pull reduction must agree exactly.  This is the
   algebraic fact the direction selector relies on when it switches.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.common import expand_frontier
from repro.graph.builder import from_edges
from repro.la.backend import BACKENDS
from repro.la.semiring import (
    MIN_FIRST,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    SEMIRINGS,
    Monoid,
)
from repro.la.spmv import PullPlan, segment_reduce, spmsv_push, spmv_pull

NUMPY = BACKENDS["numpy"]

# -------------------------------------------------------------------- #
# strategies
# -------------------------------------------------------------------- #
_INT_DTYPES = (np.int64, np.uint32)
_FLOAT_DTYPES = (np.float32, np.float64)


def _arrays(draw, dtype, lo, hi, size=None):
    n = size if size is not None else draw(st.integers(1, 16))
    vals = draw(
        st.lists(st.integers(lo, hi), min_size=n, max_size=n)
    )
    return np.asarray(vals, dtype=dtype)


@st.composite
def graphs(draw):
    """A small random multigraph with uint32 weights and int64 values."""
    n = draw(st.integers(1, 10))
    m = draw(st.integers(0, 30))
    src = _arrays(draw, np.int64, 0, n - 1, size=m)
    dst = _arrays(draw, np.int64, 0, n - 1, size=m)
    w = _arrays(draw, np.uint32, 1, 9, size=m)
    g = from_edges(src, dst, num_vertices=n, weights=w, name="prop")
    x = _arrays(draw, np.int64, 0, 100, size=n)
    return g, x


# -------------------------------------------------------------------- #
# 1. semiring axioms
# -------------------------------------------------------------------- #
@pytest.mark.parametrize("sr", list(SEMIRINGS.values()), ids=lambda s: s.name)
@pytest.mark.parametrize("dtype", _INT_DTYPES + _FLOAT_DTYPES,
                         ids=lambda d: np.dtype(d).name)
@given(vals=st.lists(st.integers(0, 1000), min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_add_identity_is_neutral(sr, dtype, vals):
    """``add(identity, x) == x`` for every catalog monoid, any dtype."""
    if sr.add.op == "or":
        x = np.asarray(vals, dtype=bool)
        ident = sr.add.identity(bool)
    else:
        x = np.asarray(vals, dtype=dtype)
        ident = sr.add.identity(dtype)
    merged = sr.add.ufunc(np.full_like(x, ident), x)
    assert merged.tobytes() == x.astype(merged.dtype).tobytes()


@pytest.mark.parametrize("sr", [MIN_PLUS, MIN_FIRST, OR_AND],
                         ids=lambda s: s.name)
@given(
    a=st.integers(0, 10**6), b=st.integers(0, 10**6), c=st.integers(0, 10**6)
)
@settings(max_examples=50, deadline=None)
def test_add_monoid_associative_exact(sr, a, b, c):
    """min and or are exactly associative on int64, float32, and bool."""
    for dtype in (np.int64, np.float32, bool):
        f = sr.add.ufunc
        x, y, z = (np.asarray(v, dtype=dtype) for v in (a, b, c))
        assert f(f(x, y), z) == f(x, f(y, z))


@given(
    a=st.floats(-1e6, 1e6, width=32),
    b=st.floats(-1e6, 1e6, width=32),
    c=st.floats(-1e6, 1e6, width=32),
)
@settings(max_examples=50, deadline=None)
def test_plus_monoid_associative_int_exact_float_close(a, b, c):
    """``add`` is exact on ints; on float32 only close — which is *why*
    the bit-identity contract pins a summation order instead of relying
    on associativity (docs/kernels.md)."""
    f = PLUS_TIMES.add.ufunc
    ia, ib, ic = (np.int64(round(v)) for v in (a, b, c))
    assert f(f(ia, ib), ic) == f(ia, f(ib, ic))
    fa, fb, fc = (np.float32(v) for v in (a, b, c))
    assert np.isclose(f(f(fa, fb), fc), f(fa, f(fb, fc)), rtol=1e-5)


@pytest.mark.parametrize("sr", list(SEMIRINGS.values()), ids=lambda s: s.name)
@given(x=st.integers(0, 1000), w=st.integers(1, 1000))
@settings(max_examples=30, deadline=None)
def test_annihilator_annihilates(sr, x, w):
    """``mult(annihilator, x) == annihilator``; coincides with the add
    identity for every catalog semiring (float dtypes: saturating INF
    only exists there for min-plus)."""
    if sr.add.op == "or":
        dtype = bool
        xv, wv = bool(x % 2), bool(w % 2)
    else:
        dtype = np.float64
        xv, wv = float(x), float(w)
    a = sr.annihilator(dtype)
    if sr.mult == "first":
        assert sr.mult_values(a, wv) == a  # trivially: first(a, .) == a
    else:
        assert sr.mult_values(np.asarray(a), np.asarray(wv, dtype=dtype)) == a
    # and the add identity really is the annihilator
    assert a == sr.add.identity(dtype)


@pytest.mark.parametrize("dtype", _INT_DTYPES + _FLOAT_DTYPES,
                         ids=lambda d: np.dtype(d).name)
def test_maxval_sentinel_resolves_per_dtype(dtype):
    m = Monoid("min", "maxval")
    ident = m.identity(dtype)
    assert ident.dtype == np.dtype(dtype)
    if np.dtype(dtype).kind in "iu":
        assert ident == np.iinfo(dtype).max
    else:
        assert np.isinf(ident)


# -------------------------------------------------------------------- #
# 2. masked SpMSpV vs dense reference
# -------------------------------------------------------------------- #
def _reference_push(graph, frontier, x, y, sr, with_weights, mask,
                    complement):
    """Scalar edge-by-edge reference in the exact expansion order."""
    rep, dsts, w = expand_frontier(graph, frontier, with_weights=with_weights)
    out = y.copy()
    kept = []
    for i in range(len(dsts)):
        d = int(dsts[i])
        if mask is not None:
            keep = bool(mask[d])
            if complement:
                keep = not keep
            if not keep:
                continue
        kept.append(d)
        wv = None if w is None else w[i : i + 1]
        val = sr.combine(x[frontier[rep[i]] : frontier[rep[i]] + 1], wv,
                         y.dtype)
        out[d] = sr.add.ufunc(out[d], val[0])
    return out, np.asarray(kept, dtype=np.int64)


@pytest.mark.parametrize("masked", ["none", "mask", "complement"])
@pytest.mark.parametrize("sr,weighted", [(MIN_PLUS, True), (MIN_FIRST, False),
                                         (PLUS_TIMES, True)],
                         ids=["min-plus", "min-first", "plus-times"])
@given(gx=graphs(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_masked_spmsv_matches_dense_reference(sr, weighted, masked, gx, data):
    g, x = gx
    n = g.num_vertices
    fsize = data.draw(st.integers(0, n))
    frontier = np.arange(fsize, dtype=np.int64)
    mask = None
    complement = False
    if masked != "none":
        mask = np.asarray(
            data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
        )
        complement = masked == "complement"
    if sr is PLUS_TIMES:
        x = x.astype(np.float64)
        y0 = np.zeros(n, dtype=np.float64)
    else:
        y0 = np.full(n, sr.add.identity(np.int64), dtype=np.int64)
        # keep min-plus sources finite so the +1/+w widen cannot wrap
        x = np.minimum(x, 100)
    y = y0.copy()
    changed, edges = spmsv_push(g, frontier, x, y, sr, NUMPY,
                                with_weights=weighted, mask=mask,
                                complement=complement)
    ref, kept_dsts = _reference_push(g, frontier, x, y0, sr, weighted, mask,
                                     complement)
    assert edges == len(kept_dsts)
    assert y.tobytes() == ref.tobytes()
    if sr.add.op == "add":
        # add-scatters report *touched* destinations (pr-push loop
        # semantics), not only value-changing ones (0.0 contributions)
        assert np.array_equal(changed, np.unique(kept_dsts))
    else:
        # min-scatters report exactly the strictly-improved entries
        assert np.array_equal(np.sort(changed), np.flatnonzero(y != y0))


@given(gx=graphs())
@settings(max_examples=25, deadline=None)
def test_structural_complement_partitions_edges(gx):
    """mask and ~mask process complementary edge sets: their edge counts
    sum to the unmasked count, and min-merging their outputs recovers
    the unmasked output."""
    g, x = gx
    n = g.num_vertices
    x = np.minimum(x, 100)
    frontier = np.arange(n, dtype=np.int64)
    mask = (np.arange(n) % 2).astype(bool)
    ident = MIN_PLUS.add.identity(np.int64)

    def run(m, comp):
        y = np.full(n, ident, dtype=np.int64)
        _, e = spmsv_push(g, frontier, x, y, MIN_PLUS, NUMPY,
                          with_weights=True, mask=m, complement=comp)
        return y, e

    y_all, e_all = run(None, False)
    y_m, e_m = run(mask, False)
    y_c, e_c = run(mask, True)
    assert e_m + e_c == e_all
    assert np.minimum(y_m, y_c).tobytes() == y_all.tobytes()


# -------------------------------------------------------------------- #
# 3. push/pull duality at every frontier density
# -------------------------------------------------------------------- #
@pytest.mark.parametrize("sr,weighted", [(MIN_PLUS, True), (MIN_FIRST, False)],
                         ids=["min-plus", "min-first"])
@given(gx=graphs())
@settings(max_examples=25, deadline=None)
def test_push_pull_equivalent_at_every_density(sr, weighted, gx):
    """For every prefix frontier (density 0/n .. n/n), pushing the
    frontier's out-edges equals a pull over all rows masked to frontier
    membership — min scatters are order-free, so equality is exact."""
    g, x = gx
    n = g.num_vertices
    x = np.minimum(x, 100)
    ident = np.int64(sr.add.identity(np.int64))
    rows = np.arange(n, dtype=np.int64)
    rev = g.reverse()
    rep, parents, w = expand_frontier(rev, rows, with_weights=weighted)
    for fsize in range(n + 1):
        frontier = rows[:fsize]
        y_push = np.full(n, ident, dtype=np.int64)
        spmsv_push(g, frontier, x, y_push, sr, NUMPY, with_weights=weighted)
        member = parents < fsize  # prefix frontier membership
        vals = sr.combine(x[parents], w, np.int64)
        y_pull = segment_reduce(sr.add, vals[member], rep[member], n, NUMPY,
                                np.int64, identity=ident)
        assert y_push.tobytes() == y_pull.tobytes()


@given(gx=graphs())
@settings(max_examples=25, deadline=None)
def test_pull_plan_matches_push_for_plus_times(gx):
    """Plus-times over rows with in-neighbors (PullPlan's documented
    precondition — reduceat cannot represent empty segments): the cached
    pull gather equals per-destination sums of the push expansion.
    Integer-valued float64 makes any summation order exact, so push and
    pull must agree bitwise despite reducing in different orders."""
    g, x = gx
    n = g.num_vertices
    # integer-valued float64: any summation order is exact
    x = x.astype(np.float64)
    indeg = np.bincount(g.indices, minlength=n)
    rows = np.flatnonzero(indeg > 0).astype(np.int64)
    if not len(rows):
        return
    plan = PullPlan.build(g, rows)
    pulled = spmv_pull(plan, x, PLUS_TIMES, NUMPY)
    y = np.zeros(n, dtype=np.float64)
    spmsv_push(g, np.arange(n, dtype=np.int64), x, y, PLUS_TIMES, NUMPY)
    assert pulled.shape == (len(rows),)
    assert np.array_equal(pulled, y[rows])


def test_pull_plan_caches_expansion():
    g = from_edges([0, 1, 2], [1, 2, 0], num_vertices=3, name="tri")
    rows = np.arange(3, dtype=np.int64)
    plan = PullPlan.build(g, rows)
    assert plan.num_rows == 3
    assert len(plan.in_nbrs) == 3
    assert np.array_equal(plan.starts, np.searchsorted(plan.rep, rows))
