"""Tests for the TWC/ALB/LB/TB load-balancer cost models.

The key behavioral contracts come straight from Section V-B2:
* all schemes are equivalent on low-degree frontiers;
* a single huge-degree vertex cripples TWC and TB (stuck in one block) but
  not ALB or LB (spread across blocks);
* ALB is never much worse than TWC.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.loadbalance import ALB, GunrockLB, LuxTB, TWC, get_balancer
from repro.loadbalance.base import cyclic_block_loads

BLOCKS = 224  # P100: 56 SMs x 4 blocks

ALL = [TWC, ALB, GunrockLB, LuxTB]


class TestRegistry:
    def test_lookup(self):
        assert get_balancer("twc") is TWC
        assert get_balancer("alb") is ALB
        assert get_balancer("lb") is GunrockLB
        assert get_balancer("tb") is LuxTB

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_balancer("magic")


class TestBasics:
    @pytest.mark.parametrize("bal", ALL, ids=lambda b: b.name)
    def test_empty_frontier_cheap(self, bal):
        c = bal.cost(np.empty(0), BLOCKS)
        assert c.total_work == 0.0
        assert c.effective_work <= bal.fixed_round_units + 1e-9

    @pytest.mark.parametrize("bal", ALL, ids=lambda b: b.name)
    def test_effective_at_least_total(self, bal):
        deg = np.random.default_rng(0).integers(1, 50, size=1000)
        c = bal.cost(deg, BLOCKS)
        assert c.effective_work >= c.total_work

    @pytest.mark.parametrize("bal", ALL, ids=lambda b: b.name)
    def test_monotone_in_work(self, bal):
        deg = np.full(1000, 10.0)
        small = bal.cost(deg, BLOCKS).effective_work
        big = bal.cost(deg * 10, BLOCKS).effective_work
        assert big > small

    def test_cyclic_loads_conserve_work(self):
        w = np.arange(100, dtype=float)
        loads = cyclic_block_loads(w, 7)
        assert loads.sum() == pytest.approx(w.sum())


class TestUniformFrontier:
    """On a uniform low-degree frontier all schemes are near-equal."""

    def test_all_schemes_within_40pct(self):
        deg = np.full(50_000, 16.0)
        costs = {b.name: b.cost(deg, BLOCKS).effective_work for b in ALL}
        lo, hi = min(costs.values()), max(costs.values())
        assert hi / lo < 1.4, costs

    def test_imbalance_near_one(self):
        deg = np.full(50_000, 16.0)
        for b in ALL:
            assert b.cost(deg, BLOCKS).imbalance < 1.4


class TestGiantVertex:
    """One vertex with in-degree >> everything (the clueweb12 pull case)."""

    @staticmethod
    def frontier():
        deg = np.full(20_000, 10.0)
        deg[7] = 2_000_000.0  # the authority page
        return deg

    def test_twc_cripples(self):
        c = TWC.cost(self.frontier(), BLOCKS)
        assert c.imbalance > 20  # giant stuck in one block

    def test_tb_cripples(self):
        c = LuxTB.cost(self.frontier(), BLOCKS)
        assert c.imbalance > 20

    def test_alb_handles(self):
        c = ALB.cost(self.frontier(), BLOCKS)
        assert c.imbalance < 2.0

    def test_lb_handles(self):
        c = GunrockLB.cost(self.frontier(), BLOCKS)
        assert c.imbalance < 1.5

    def test_alb_beats_twc_by_far(self):
        deg = self.frontier()
        assert (
            ALB.cost(deg, BLOCKS).effective_work
            < 0.2 * TWC.cost(deg, BLOCKS).effective_work
        )


class TestPaperOrderings:
    def test_alb_close_to_twc_on_push_like_frontier(self):
        """Push frontiers (bounded out-degree) show no ALB advantage."""
        rng = np.random.default_rng(1)
        deg = rng.integers(1, 300, size=30_000).astype(float)
        a = ALB.cost(deg, BLOCKS).effective_work
        t = TWC.cost(deg, BLOCKS).effective_work
        assert a == pytest.approx(t, rel=0.25)

    def test_tb_worst_on_tiny_degrees(self):
        """Lux wastes block lanes on degree-1 vertices."""
        deg = np.ones(100_000)
        assert (
            LuxTB.cost(deg, BLOCKS).effective_work
            > 1.5 * TWC.cost(deg, BLOCKS).effective_work
        )

    def test_lb_overhead_visible_on_uniform(self):
        deg = np.full(100_000, 16.0)
        assert (
            GunrockLB.cost(deg, BLOCKS).effective_work
            > TWC.cost(deg, BLOCKS).effective_work
        )
