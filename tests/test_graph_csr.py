"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import CSRGraph, from_edges


def tiny() -> CSRGraph:
    #  0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 isolated
    return from_edges([0, 0, 1, 2], [1, 2, 2, 0], num_vertices=4)


class TestConstruction:
    def test_counts(self):
        g = tiny()
        assert g.num_vertices == 4
        assert g.num_edges == 4

    def test_indptr_monotone(self):
        g = tiny()
        assert np.all(np.diff(g.indptr) >= 0)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.num_edges

    def test_neighbors(self):
        g = tiny()
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert g.neighbors(3).tolist() == []

    def test_immutable(self):
        g = tiny()
        with pytest.raises(ValueError):
            g.indices[0] = 3

    def test_empty_graph(self):
        g = from_edges([], [], num_vertices=5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.out_degrees().sum() == 0

    def test_zero_vertices(self):
        g = from_edges([], [], num_vertices=0)
        assert g.num_vertices == 0

    def test_self_loop_and_parallel_edges(self):
        g = from_edges([0, 0, 0], [0, 1, 1], num_vertices=2)
        assert g.num_edges == 3
        assert g.neighbors(0).tolist() == [0, 1, 1]

    def test_dedup(self):
        g = from_edges([0, 0, 0], [1, 1, 2], num_vertices=3, dedup=True)
        assert g.num_edges == 2

    def test_dedup_keeps_first_weight(self):
        g = from_edges([0, 0], [1, 1], num_vertices=2, weights=[7, 9], dedup=True)
        assert g.weights.tolist() == [7]

    def test_bad_indptr_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1, 0], dtype=np.int32))

    def test_out_of_range_destination_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([5], dtype=np.int32))

    def test_mismatched_weights_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edges([0], [1], num_vertices=2, weights=[1, 2])

    def test_vertex_exceeding_bound_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edges([0], [9], num_vertices=3)


class TestDegrees:
    def test_out_degrees(self):
        g = tiny()
        assert g.out_degrees().tolist() == [2, 1, 1, 0]

    def test_in_degrees(self):
        g = tiny()
        assert g.in_degrees().tolist() == [1, 1, 2, 0]

    def test_degree_sum_is_edge_count(self):
        g = tiny()
        assert g.out_degrees().sum() == g.num_edges
        assert g.in_degrees().sum() == g.num_edges

    def test_edge_sources(self):
        g = tiny()
        assert g.edge_sources().tolist() == [0, 0, 1, 2]


class TestReverse:
    def test_reverse_degrees_swap(self):
        g = tiny()
        r = g.reverse()
        assert r.out_degrees().tolist() == g.in_degrees().tolist()
        assert r.in_degrees().tolist() == g.out_degrees().tolist()

    def test_reverse_edges(self):
        g = tiny()
        r = g.reverse()
        fwd = set(zip(g.edge_sources().tolist(), g.indices.tolist()))
        bwd = set(zip(r.indices.tolist(), r.edge_sources().tolist()))
        assert fwd == bwd

    def test_reverse_cached(self):
        g = tiny()
        assert g.reverse() is g.reverse()
        assert g.reverse().reverse() is g

    def test_reverse_preserves_weights(self):
        g = from_edges([0, 1], [1, 0], num_vertices=2, weights=[5, 9])
        r = g.reverse()
        # edge 0->1 weight 5 becomes in-edge of 1 from 0 with weight 5
        w_of_edge_into_1 = r.edge_weights_of(1)
        assert w_of_edge_into_1.tolist() == [5]

    def test_double_reverse_equals_original(self):
        g = from_edges([0, 0, 2, 3], [1, 3, 1, 0], num_vertices=4, weights=[1, 2, 3, 4])
        rr = g.reverse().reverse()
        assert rr == g


class TestMisc:
    def test_nbytes_positive(self):
        assert tiny().nbytes() > 0

    def test_weights_increase_nbytes(self):
        g = from_edges([0], [1], num_vertices=2, weights=[3])
        assert g.nbytes(include_weights=True) > g.nbytes(include_weights=False)

    def test_equality(self):
        assert tiny() == tiny()
        g2 = from_edges([0], [1], num_vertices=4)
        assert tiny() != g2

    def test_edge_weights_of_requires_weights(self):
        with pytest.raises(GraphFormatError):
            tiny().edge_weights_of(0)

    def test_repr_contains_counts(self):
        assert "4" in repr(tiny())
