"""Tests for the jagged vertex-cut and its one-sided invariant."""

import numpy as np
import pytest

from repro.comm import FieldSpec, GluonComm
from repro.generators import rmat
from repro.partition import jagged, partition, partition_stats

DIST = FieldSpec(name="d", dtype=np.uint32, reduce_op="min",
                 read_at="src", write_at="dst")


@pytest.fixture(scope="module")
def g():
    return rmat(10, edge_factor=8, seed=1)


class TestStructure:
    def test_valid(self, g):
        pg = jagged(g, 8)
        pg.validate()
        assert pg.policy == "jagged"
        assert pg.grid is not None

    def test_registered(self, g):
        assert partition(g, "jagged", 4, cache=False).policy == "jagged"

    def test_bad_grid(self, g):
        with pytest.raises(ValueError):
            jagged(g, 8, grid=(3, 2))

    def test_row_invariant_kept(self, g):
        """Out-edges stay in the master's grid row (as CVC)."""
        pg = jagged(g, 8)
        pr, pc = pg.grid
        for p in pg.parts:
            out_g = p.local_to_global[p.has_out_edges()]
            assert np.all(pg.vertex_owner[out_g] // pc == p.pid // pc)

    def test_broadcast_row_restricted(self, g):
        pg = jagged(g, 8)
        pr, pc = pg.grid
        comm = GluonComm(pg, [DIST])
        for p in range(8):
            for q in comm.broadcast_partners("d", p):
                assert q // pc == p // pc

    def test_reduce_not_column_restricted(self, g):
        """The jagged trade-off: the column invariant is given up."""
        pg = jagged(g, 8)
        pr, pc = pg.grid
        comm = GluonComm(pg, [DIST])
        assert any(
            q % pc != p % pc
            for p in range(8)
            for q in comm.reduce_partners("d", p)
        )

    def test_better_static_balance_than_cvc(self, g):
        """Per-row-block column splits adapt to skew that CVC's single
        global column boundary cannot."""
        jg = partition_stats(jagged(g, 8))
        cv = partition_stats(partition(g, "cvc", 8, cache=False))
        assert jg.static_balance <= cv.static_balance + 0.01


class TestCorrectness:
    def test_bfs_exact(self, g):
        from repro.apps import get_app
        from repro.engine import BSPEngine, RunContext
        from repro.hw import bridges
        from repro.validation import reference_bfs

        src = int(np.argmax(g.out_degrees()))
        ctx = RunContext(num_global_vertices=g.num_vertices, source=src,
                         global_out_degrees=g.out_degrees())
        pg = jagged(g, 8)
        res = BSPEngine(pg, bridges(8), get_app("bfs"), check_memory=False).run(ctx)
        assert np.array_equal(res.labels, reference_bfs(g, src))
