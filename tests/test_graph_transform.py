"""Tests for graph transformations and builders."""

import networkx as nx
import numpy as np
import pytest

from repro.constants import MAX_EDGE_WEIGHT
from repro.graph import (
    add_random_weights,
    from_edges,
    from_networkx,
    largest_component_subgraph,
    make_undirected,
    relabel,
    to_networkx,
)


def chain(n=5):
    return from_edges(range(n - 1), range(1, n), num_vertices=n)


class TestWeights:
    def test_weights_in_range(self):
        g = add_random_weights(chain(50), seed=1)
        assert g.weights.min() >= 1
        assert g.weights.max() <= MAX_EDGE_WEIGHT

    def test_deterministic(self):
        a = add_random_weights(chain(50), seed=7)
        b = add_random_weights(chain(50), seed=7)
        assert np.array_equal(a.weights, b.weights)

    def test_different_seed_differs(self):
        a = add_random_weights(chain(200), seed=1)
        b = add_random_weights(chain(200), seed=2)
        assert not np.array_equal(a.weights, b.weights)

    def test_topology_unchanged(self):
        g = chain(10)
        w = add_random_weights(g)
        assert np.array_equal(g.indptr, w.indptr)
        assert np.array_equal(g.indices, w.indices)


class TestUndirected:
    def test_symmetric(self):
        g = make_undirected(from_edges([0, 1], [1, 2], num_vertices=3))
        edges = set(zip(g.edge_sources().tolist(), g.indices.tolist()))
        assert (1, 0) in edges and (2, 1) in edges

    def test_no_duplicate_edges(self):
        g = make_undirected(from_edges([0, 1], [1, 0], num_vertices=2))
        assert g.num_edges == 2

    def test_degree_symmetry(self):
        g = make_undirected(from_edges([0, 0, 1], [1, 2, 2], num_vertices=3))
        assert np.array_equal(g.out_degrees(), g.in_degrees())


class TestRelabel:
    def test_identity(self):
        g = chain(4)
        assert relabel(g, np.arange(4)) == g

    def test_preserves_structure(self):
        g = from_edges([0, 1, 2], [1, 2, 0], num_vertices=3)
        perm = np.array([2, 0, 1])
        h = relabel(g, perm)
        orig = set(zip(g.edge_sources().tolist(), g.indices.tolist()))
        new = set(zip(h.edge_sources().tolist(), h.indices.tolist()))
        assert new == {(perm[a], perm[b]) for a, b in orig}

    def test_bad_perm_rejected(self):
        with pytest.raises(ValueError):
            relabel(chain(3), np.array([0, 0, 1]))


class TestGiantComponent:
    def test_keeps_giant(self):
        # component {0,1,2} (triangle) and isolated pair {3,4}
        g = from_edges([0, 1, 2, 3], [1, 2, 0, 4], num_vertices=5)
        giant = largest_component_subgraph(g)
        assert giant.num_vertices == 3
        assert giant.num_edges == 3

    def test_connected_graph_unchanged_size(self):
        g = make_undirected(chain(6))
        giant = largest_component_subgraph(g)
        assert giant.num_vertices == 6
        assert giant.num_edges == g.num_edges


class TestNetworkxRoundTrip:
    def test_roundtrip_digraph(self):
        g0 = nx.gnp_random_graph(30, 0.1, seed=3, directed=True)
        csr = from_networkx(g0)
        g1 = to_networkx(csr)
        assert set(g0.edges()) == set(g1.edges())

    def test_undirected_networkx_symmetrized(self):
        g0 = nx.path_graph(4)
        csr = from_networkx(g0)
        assert csr.num_edges == 6  # 3 undirected edges -> 6 arcs

    def test_weights_roundtrip(self):
        g0 = nx.DiGraph()
        g0.add_weighted_edges_from([(0, 1, 5), (1, 2, 9)])
        csr = from_networkx(g0, weight_attr="weight")
        assert sorted(csr.weights.tolist()) == [5, 9]
