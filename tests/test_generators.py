"""Tests for the graph generators."""

import numpy as np
import pytest

from repro.generators import powerlaw_social, rmat, small_world, webcrawl
from repro.graph.properties import approximate_diameter


class TestRmat:
    def test_size(self):
        g = rmat(8, edge_factor=8, seed=0)
        assert g.num_vertices == 256
        assert g.num_edges == 2048

    def test_deterministic(self):
        a, b = rmat(8, seed=5), rmat(8, seed=5)
        assert a == b

    def test_seed_changes_graph(self):
        assert rmat(8, seed=1) != rmat(8, seed=2)

    def test_skewed_degrees(self):
        g = rmat(12, edge_factor=16, seed=0)
        deg = g.out_degrees()
        # power law: max degree far above average
        assert deg.max() > 10 * deg.mean()

    def test_uniform_quadrants_not_skewed(self):
        g = rmat(10, edge_factor=16, a=0.25, b=0.25, c=0.25, seed=0)
        deg = g.out_degrees()
        assert deg.max() < 6 * max(deg.mean(), 1)

    def test_dedup_reduces_edges(self):
        g1 = rmat(6, edge_factor=32, seed=0)
        g2 = rmat(6, edge_factor=32, seed=0, dedup=True)
        assert g2.num_edges < g1.num_edges

    def test_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat(5, a=0.6, b=0.3, c=0.3)


class TestPowerlawSocial:
    def test_size_approx(self):
        g = powerlaw_social(1000, 20.0, seed=0)
        assert abs(g.num_edges - 20000) < 2000  # self-loop removal only

    def test_no_self_loops(self):
        g = powerlaw_social(500, 10.0, seed=0)
        assert not np.any(g.edge_sources() == g.indices)

    def test_hub_injection_raises_max_out_degree(self):
        base = powerlaw_social(2000, 20.0, seed=3)
        hubby = powerlaw_social(
            2000, 20.0, num_hubs=1, hub_degree_fraction=0.2, seed=3
        )
        assert hubby.out_degrees().max() > 2 * base.out_degrees().max()

    def test_asymmetry_lowers_in_skew(self):
        sym = powerlaw_social(3000, 20.0, in_out_symmetry=1.0, seed=4)
        asym = powerlaw_social(3000, 20.0, in_out_symmetry=0.3, seed=4)
        assert asym.in_degrees().max() < sym.in_degrees().max()

    def test_deterministic(self):
        assert powerlaw_social(300, 8.0, seed=9) == powerlaw_social(300, 8.0, seed=9)

    def test_too_small(self):
        with pytest.raises(ValueError):
            powerlaw_social(1, 4.0)


class TestWebcrawl:
    def test_size_approx(self):
        g = webcrawl(4000, 25.0, seed=0)
        assert abs(g.num_edges - 100_000) < 10_000

    def test_in_degree_dwarfs_out_degree(self):
        g = webcrawl(8000, 30.0, authority_share=0.35, max_out_degree=100, seed=0)
        assert g.in_degrees().max() > 5 * g.out_degrees().max()

    def test_tail_raises_diameter(self):
        flat = webcrawl(4000, 20.0, tail_length=0, seed=2)
        tailed = webcrawl(4000, 20.0, tail_length=200, seed=2)
        d_flat = approximate_diameter(flat, seed=0)
        d_tail = approximate_diameter(tailed, seed=0)
        assert d_tail >= d_flat + 150

    def test_deterministic(self):
        assert webcrawl(1000, 10.0, seed=5) == webcrawl(1000, 10.0, seed=5)

    def test_tail_too_long_rejected(self):
        with pytest.raises(ValueError):
            webcrawl(100, 5.0, tail_length=100)

    def test_no_self_loops_in_core(self):
        g = webcrawl(2000, 15.0, tail_length=0, seed=1)
        assert not np.any(g.edge_sources() == g.indices)


class TestSmallWorld:
    def test_ring_degrees(self):
        g = small_world(100, k=4, rewire_p=0.0, seed=0)
        assert np.all(g.out_degrees() == 4)

    def test_rewiring_shortens_diameter(self):
        ring = small_world(400, k=2, rewire_p=0.0, seed=0)
        sw = small_world(400, k=2, rewire_p=0.2, seed=0)
        assert approximate_diameter(sw, seed=0) < approximate_diameter(ring, seed=0)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            small_world(10, k=10)
