"""Behavioral tests for the bulk-asynchronous engine."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.engine import BASPEngine, BSPEngine
from repro.errors import ConfigurationError
from repro.hw import bridges
from repro.partition import partition


def run(app_name, graph, ctx, engine_cls, policy="cvc", parts=8):
    pg = partition(graph, policy, parts)
    return engine_cls(
        pg, bridges(parts), get_app(app_name), check_memory=False
    ).run(ctx)


class TestAsyncSemantics:
    def test_local_rounds_diverge_across_partitions(self, small_graph, ctx):
        res = run("sssp", small_graph, ctx, BASPEngine)
        assert res.stats.local_rounds_max >= res.stats.local_rounds_min

    def test_more_local_rounds_than_bsp(self, small_graph, ctx):
        """Stale reads cause redundant local rounds (Section V-B4)."""
        bsp = run("sssp", small_graph, ctx, BSPEngine)
        basp = run("sssp", small_graph, ctx, BASPEngine)
        assert basp.stats.local_rounds_max >= bsp.stats.rounds

    def test_redundant_work_items(self, small_graph, ctx):
        """BASP performs at least as many edge traversals as BSP."""
        bsp = run("sssp", small_graph, ctx, BSPEngine)
        basp = run("sssp", small_graph, ctx, BASPEngine)
        assert basp.stats.work_items >= bsp.stats.work_items

    def test_breakdown_fields_populated(self, small_graph, ctx):
        res = run("bfs", small_graph, ctx, BASPEngine)
        s = res.stats
        assert s.execution_time > 0
        assert s.max_compute > 0
        assert s.max_compute + s.min_wait + s.device_comm == pytest.approx(
            s.execution_time, rel=1e-6
        )

    def test_async_rejects_incapable_app(self, small_graph, ctx):
        app = get_app("bfs")
        app.async_capable = False
        pg = partition(small_graph, "cvc", 4)
        with pytest.raises(ConfigurationError):
            BASPEngine(pg, bridges(4), app)

    def test_comm_volume_positive(self, small_graph, ctx):
        res = run("bfs", small_graph, ctx, BASPEngine)
        assert res.stats.comm_volume_bytes > 0


class TestDeterminism:
    def test_basp_is_deterministic(self, small_graph, ctx):
        a = run("sssp", small_graph, ctx, BASPEngine)
        b = run("sssp", small_graph, ctx, BASPEngine)
        assert np.array_equal(a.labels, b.labels)
        assert a.stats.execution_time == b.stats.execution_time
        assert a.stats.local_rounds_max == b.stats.local_rounds_max


class TestStragglerBehavior:
    def test_async_reduces_wait_share_on_imbalanced_partitions(
        self, small_graph, ctx
    ):
        """BASP's raison d'etre: decoupled execution shrinks blocking time
        relative to the run's span when partitions are imbalanced."""
        bsp = run("sssp", small_graph, ctx, BSPEngine, policy="hvc")
        basp = run("sssp", small_graph, ctx, BASPEngine, policy="hvc")
        bsp_wait_share = bsp.stats.per_partition_wait.max() / max(
            bsp.stats.execution_time, 1e-12
        )
        basp_wait_share = basp.stats.per_partition_wait.max() / max(
            basp.stats.execution_time, 1e-12
        )
        # not universally guaranteed, but holds for this fixed workload
        assert basp_wait_share <= bsp_wait_share * 1.5
