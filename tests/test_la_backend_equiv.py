"""Backend-differential suite: the LA kernel's bit-identity contract.

``kernel="la"`` must produce *bit-identical* labels — and identical
round counts — to the legacy loop path for bfs / pagerank / cc / sssp
(plus bfs-do and the pr-push/cc-pj variants) on both engines, across
every fuzz graph shape, all four study partition policies, and every
available array backend.  This suite is what certifies a backend: a new
backend passes here or it does not ship (docs/kernels.md).

The numba parameters skip cleanly when numba is not importable — CI's
``la-backend-equiv`` job runs exactly this file in a numba-less install
to prove the skip path.
"""

from __future__ import annotations

import importlib.util
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.apps.bfs import DirectionOptBFS
from repro.apps.registry import get_app
from repro.engine import BASPEngine, BSPEngine
from repro.errors import ConfigurationError, UnsupportedFeatureError
from repro.fuzz.cases import Case, make_context
from repro.fuzz.gen import SHAPES, build_shape, dense_graph
from repro.hw import bridges
from repro.la.backend import BACKENDS, available_backends, get_backend
from repro.partition import partition

HAS_NUMBA = importlib.util.find_spec("numba") is not None

#: the four study policies the differential matrix rotates through
POLICIES = ("cvc", "oec", "iec", "hvc")

#: (app, engines) — bfs-do is BSP-only (async pull is unsound; see
#: test_bfsdo_stays_bsp_only below)
APP_ENGINES = [
    ("bfs", ("bsp", "basp")),
    ("bfs-do", ("bsp",)),
    ("sssp", ("bsp", "basp")),
    ("cc", ("bsp", "basp")),
    ("cc-pj", ("bsp", "basp")),
    ("pr", ("bsp", "basp")),
    ("pr-push", ("bsp", "basp")),
]

BACKEND_PARAMS = [
    "numpy",
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed"),
    ),
]

_ENGINES = {"bsp": BSPEngine, "basp": BASPEngine}


def _prepare(shape: str, app_name: str, seed: int):
    """Build one deterministic graph for (shape, app): symmetrized and
    re-weighted for the symmetric apps, exactly like the fuzzer."""
    from repro.graph.transform import add_random_weights, make_undirected

    rng = np.random.default_rng([seed, zlib.crc32(shape.encode())])
    graph = build_shape(shape, rng)
    if app_name in ("cc", "cc-pj"):
        graph = add_random_weights(make_undirected(graph), seed=seed)
    return graph


def _run(graph, app_name, engine, policy, parts, kernel, backend=None):
    app = get_app(app_name, kernel=kernel, backend=backend)
    case = Case.from_graph(graph, app=app_name, policy=policy, parts=parts,
                           engine=engine)
    ctx = make_context(graph, case)
    pg = partition(graph, policy, parts)
    eng = _ENGINES[engine](pg, bridges(parts), app, check_memory=False)
    res = eng.run(ctx)
    return res.labels, res.stats


def _assert_identical(graph, app_name, engine, policy, parts, backend):
    ref_labels, ref_stats = _run(graph, app_name, engine, policy, parts,
                                 "loop")
    la_labels, la_stats = _run(graph, app_name, engine, policy, parts,
                               "la", backend=backend)
    assert la_labels.dtype == ref_labels.dtype
    assert la_labels.tobytes() == ref_labels.tobytes(), (
        f"{app_name}/{engine}/{policy}/p{parts} [{backend}]: labels differ"
    )
    assert la_stats.rounds == ref_stats.rounds
    assert la_stats.local_rounds_min == ref_stats.local_rounds_min
    assert la_stats.local_rounds_max == ref_stats.local_rounds_max


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
@pytest.mark.parametrize(
    "app_name,engines", APP_ENGINES, ids=[a for a, _ in APP_ENGINES]
)
def test_all_shapes_bit_identical(app_name, engines, backend):
    """Every fuzz shape, policies and partition counts rotating."""
    parts_cycle = (2, 3, 4, 1)
    for i, shape in enumerate(sorted(SHAPES)):
        graph = _prepare(shape, app_name, seed=17)
        policy = POLICIES[i % len(POLICIES)]
        parts = parts_cycle[i % len(parts_cycle)]
        for engine in engines:
            _assert_identical(graph, app_name, engine, policy, parts,
                              backend)


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
@pytest.mark.parametrize("policy", POLICIES)
def test_all_policies_bit_identical(policy, backend):
    """Every study policy explicitly, on the richest shape (rmat)."""
    for app_name, engines in APP_ENGINES:
        graph = _prepare("rmat", app_name, seed=23)
        for engine in engines:
            _assert_identical(graph, app_name, engine, policy, 4, backend)


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_direction_pull_bit_identical(backend):
    """A dense graph forces bfs-do into pull from round one; the
    generic selector must match the loop path there too."""
    graph = dense_graph(12, seed=5)
    for policy in POLICIES:
        _assert_identical(graph, "bfs-do", "bsp", policy, 3, backend)


# ---------------------------------------------------------------------- #
# backend registry semantics
# ---------------------------------------------------------------------- #
def test_numpy_backend_always_available():
    assert "numpy" in available_backends()
    assert get_backend("numpy") is BACKENDS["numpy"]


def test_auto_pick_prefers_numba_when_available():
    auto = get_backend(None)
    assert auto.name == ("numba" if HAS_NUMBA else "numpy")
    assert get_backend("auto") is auto


def test_unknown_backend_is_configuration_error():
    with pytest.raises(ConfigurationError):
        get_backend("cuda")


def test_unavailable_backend_raises_unsupported():
    """Registered-but-unavailable stubs (torch on a torch-less install)
    surface as UnsupportedFeatureError — the sweep's 'missing point'
    taxonomy, not a crash."""
    for name, backend in BACKENDS.items():
        if backend.available:
            assert get_backend(name) is backend
        else:
            with pytest.raises(UnsupportedFeatureError):
                get_backend(name)


def test_torch_stub_is_registered():
    assert "torch" in BACKENDS  # named even when not importable


def test_la_flag_falls_back_on_unported_apps():
    """Apps without an LA port keep the loop path under kernel="la"."""
    app = get_app("mis", kernel="la")
    assert app.kernel == "loop" and app.la_backend is None


def test_unknown_kernel_rejected():
    with pytest.raises(ConfigurationError):
        get_app("bfs", kernel="simd")


# ---------------------------------------------------------------------- #
# why bfs-do stays BSP-only (ISSUE 6 satellite: re-enable under BASP
# iff the generic selector passes the fuzz differential there)
# ---------------------------------------------------------------------- #
def test_bfsdo_stays_bsp_only():
    """The committed fuzz reproducer still diverges under forced-async
    pull *with the generic selector*, on both kernels.

    Beamer pull finalizes a vertex at its first reached parent, which is
    only the true BFS parent level-synchronously — an algorithmic
    precondition, not an artifact of the old private cache, so porting
    the cache into repro.la.direction cannot (and does not) lift it.
    If this test ever starts failing because the replay *passes*, the
    selector has become async-sound and bfs-do can be re-enabled under
    BASP; until then it stays ``async_capable=False``.
    """
    from dataclasses import replace

    from repro.apps import registry
    from repro.fuzz.cases import CaseFailure, run_case

    assert DirectionOptBFS.async_capable is False

    case = Case.load(
        str(Path(__file__).parent / "cases" / "bfsdo_async_pull_finalize.json")
    )

    class AsyncDO(DirectionOptBFS):
        async_capable = True

    for kernel in ("loop", "la"):
        registry.APPS["bfs-do"] = AsyncDO
        try:
            with pytest.raises(CaseFailure):
                run_case(replace(case, kernel=kernel), check="full")
        finally:
            registry.APPS["bfs-do"] = DirectionOptBFS


def test_bfsdo_private_pull_cache_is_gone():
    """The old private reverse-graph cache was deleted in favor of
    repro.la.direction; both kernels share the PullPool."""
    import inspect

    from repro.la.direction import PullPool

    source = inspect.getsource(DirectionOptBFS)
    assert "direction.PullPool" in source
    assert "np.minimum.at" not in source  # the hand-rolled pull is gone
    assert hasattr(PullPool, "narrow")
