"""Tests for the Gluon-style synchronization substrate.

These validate semantic correctness (values propagate mirror->master->mirror
with the right reduction), the invariant optimizations (phases eliminated or
partner sets restricted per policy), and UO/AS/memoization wire effects.
"""

import numpy as np
import pytest

from repro.comm import CommConfig, FieldSpec, GluonComm
from repro.constants import INF
from repro.errors import ConfigurationError
from repro.generators import rmat
from repro.partition import cvc, hvc, iec, oec, partition

DIST = FieldSpec(name="dist", dtype=np.uint32, reduce_op="min",
                 read_at="src", write_at="dst", identity=INF)


@pytest.fixture(scope="module")
def g():
    return rmat(8, edge_factor=8, seed=2)


def fresh_labels(pg, value=INF, dtype=np.uint32):
    return [np.full(p.num_local, value, dtype=dtype) for p in pg.parts]


class TestFieldSpec:
    def test_bad_reduce_op(self):
        with pytest.raises(ConfigurationError):
            FieldSpec(name="x", dtype=np.uint32, reduce_op="xor")

    def test_bad_locations(self):
        with pytest.raises(ConfigurationError):
            FieldSpec(name="x", dtype=np.uint32, read_at="up")
        with pytest.raises(ConfigurationError):
            FieldSpec(name="x", dtype=np.uint32, write_at="down")

    def test_duplicate_fields_rejected(self, g):
        pg = partition(g, "oec", 2, cache=False)
        with pytest.raises(ConfigurationError):
            GluonComm(pg, [DIST, DIST])


class TestMinReduceRoundTrip:
    @pytest.mark.parametrize("policy", ["oec", "iec", "hvc", "cvc"])
    def test_mirror_write_reaches_all_readers(self, g, policy):
        """Write a low value at one mirror; after sync every proxy that can
        read the field sees the canonical minimum."""
        pg = partition(g, policy, 4, cache=False)
        comm = GluonComm(pg, [DIST])
        labels = fresh_labels(pg)

        # find some mirror with in-edges (a writable proxy)
        target_gid = None
        for p in pg.parts:
            cand = np.flatnonzero(~p.is_master & p.has_in_edges())
            if len(cand):
                l = int(cand[0])
                labels[p.pid][l] = 7
                comm.mark_updated("dist", p.pid, [l])
                target_gid = int(p.local_to_global[l])
                break
        if target_gid is None:
            pytest.skip("policy produced no writable mirrors at this scale")

        comm.bsp_sync("dist", labels)

        owner = int(pg.vertex_owner[target_gid])
        mloc = pg.parts[owner].global_to_local[target_gid]
        assert labels[owner][mloc] == 7  # master reduced the write
        for p in pg.parts:
            l = p.global_to_local[target_gid]
            if l >= 0 and p.has_out_edges()[l]:
                assert labels[p.pid][l] == 7  # reader proxies got broadcast

    def test_min_of_concurrent_writes_wins(self, g):
        pg = partition(g, "cvc", 4, cache=False)
        comm = GluonComm(pg, [DIST])
        labels = fresh_labels(pg)
        # write different values for the same vertex on every partition
        # that holds a writable proxy of it
        gid = None
        for v in range(g.num_vertices):
            holders = [
                p for p in pg.parts
                if p.global_to_local[v] >= 0
                and p.has_in_edges()[p.global_to_local[v]]
            ]
            if len(holders) >= 2:
                gid = v
                break
        assert gid is not None
        for k, p in enumerate(holders):
            l = p.global_to_local[gid]
            labels[p.pid][l] = 100 + k
            comm.mark_updated("dist", p.pid, [l])
        comm.bsp_sync("dist", labels)
        owner = int(pg.vertex_owner[gid])
        assert labels[owner][pg.parts[owner].global_to_local[gid]] == 100

    def test_changed_ids_reported(self, g):
        pg = partition(g, "iec", 2, cache=False)
        comm = GluonComm(pg, [DIST])
        labels = fresh_labels(pg)
        # master-side write then broadcast: receiver must report changes
        p0 = pg.parts[0]
        masters_with_mirrors = [
            idx for q, idx in p0.master_exchange.items() if len(idx)
        ]
        if not masters_with_mirrors:
            pytest.skip("no shared masters")
        l = int(masters_with_mirrors[0][0])
        labels[0][l] = 3
        comm.mark_updated("dist", 0, [l])
        _, changed = comm.bsp_sync("dist", labels)
        total_changed = sum(len(c) for c in changed)
        assert total_changed >= 1


class TestInvariantElimination:
    def test_oec_eliminates_broadcast(self, g):
        """src-read field under OEC: mirrors have no out-edges, so no
        broadcast plans survive (Section III-D1's worked example)."""
        pg = partition(g, "oec", 4, cache=False)
        comm = GluonComm(pg, [DIST])
        assert all(
            comm.broadcast_partners("dist", p) == [] for p in range(4)
        )
        # ... but reduce is still needed
        assert any(comm.reduce_partners("dist", p) for p in range(4))

    def test_iec_eliminates_reduce(self, g):
        """dst-write field under IEC: mirrors have no in-edges -> no reduce."""
        pg = partition(g, "iec", 4, cache=False)
        comm = GluonComm(pg, [DIST])
        assert all(comm.reduce_partners("dist", p) == [] for p in range(4))
        assert any(comm.broadcast_partners("dist", p) for p in range(4))

    def test_cvc_partners_restricted_to_grid(self):
        g = rmat(10, edge_factor=8, seed=4)
        pg = cvc(g, 8)
        pr, pc = pg.grid
        comm = GluonComm(pg, [DIST])
        for p in range(8):
            row, col = divmod(p, pc)
            for q in comm.reduce_partners("dist", p):
                assert q % pc == col  # reduce along grid column
            for q in comm.broadcast_partners("dist", p):
                assert q // pc == row  # broadcast along grid row

    def test_filtering_off_syncs_everything(self, g):
        pg = partition(g, "oec", 4, cache=False)
        comm = GluonComm(
            pg, [DIST], CommConfig(invariant_filtering=False)
        )
        # without filtering, OEC gets (useless) broadcast plans back
        assert any(comm.broadcast_partners("dist", p) for p in range(4))

    def test_master_write_field_has_no_reduce(self, g):
        pg = partition(g, "cvc", 4, cache=False)
        rank = FieldSpec(name="rank", dtype=np.float32, reduce_op="add",
                         read_at="src", write_at="master")
        comm = GluonComm(pg, [rank])
        assert all(comm.reduce_partners("rank", p) == [] for p in range(4))

    def test_none_read_field_has_no_broadcast(self, g):
        pg = partition(g, "cvc", 4, cache=False)
        resid = FieldSpec(name="resid", dtype=np.float32, reduce_op="add",
                          read_at="none", write_at="dst",
                          reset_after_reduce=True)
        comm = GluonComm(pg, [resid])
        assert all(comm.broadcast_partners("resid", p) == [] for p in range(4))


class TestUpdateTracking:
    def test_uo_sends_nothing_when_clean(self, g):
        pg = partition(g, "cvc", 4, cache=False)
        comm = GluonComm(pg, [DIST], CommConfig(update_only=True))
        labels = fresh_labels(pg)
        msgs, _ = comm.bsp_sync("dist", labels)
        assert msgs == []

    def test_as_sends_every_round(self, g):
        pg = partition(g, "cvc", 4, cache=False)
        comm = GluonComm(pg, [DIST], CommConfig(update_only=False))
        labels = fresh_labels(pg)
        msgs1, _ = comm.bsp_sync("dist", labels)
        msgs2, _ = comm.bsp_sync("dist", labels)
        assert len(msgs1) > 0 and len(msgs1) == len(msgs2)

    def test_uo_volume_less_than_as_for_sparse_updates(self, g):
        pg = partition(g, "cvc", 4, cache=False)
        labels_uo = fresh_labels(pg)
        labels_as = fresh_labels(pg)
        comm_uo = GluonComm(pg, [DIST], CommConfig(update_only=True))
        comm_as = GluonComm(pg, [DIST], CommConfig(update_only=False))
        # one sparse update
        p = pg.parts[0]
        mirrors = np.flatnonzero(~p.is_master)
        if len(mirrors) == 0:
            pytest.skip("no mirrors")
        labels_uo[0][mirrors[0]] = 1
        labels_as[0][mirrors[0]] = 1
        comm_uo.mark_updated("dist", 0, [mirrors[0]])
        m_uo, _ = comm_uo.bsp_sync("dist", labels_uo)
        m_as, _ = comm_as.bsp_sync("dist", labels_as)
        v_uo = sum(m.wire_bytes() for m in m_uo)
        v_as = sum(m.wire_bytes() for m in m_as)
        assert v_uo < v_as

    def test_uo_records_scan_overhead(self, g):
        pg = partition(g, "cvc", 4, cache=False)
        comm = GluonComm(pg, [DIST], CommConfig(update_only=True))
        labels = fresh_labels(pg)
        p = pg.parts[0]
        writable = np.flatnonzero(~p.is_master & p.has_in_edges())
        if len(writable) == 0:
            pytest.skip("no writable mirrors")
        labels[0][writable[0]] = 1
        comm.mark_updated("dist", 0, [writable[0]])
        msgs = comm.make_reduce_messages("dist", 0, labels)
        assert msgs and all(m.scanned_elements > 0 for m in msgs)

    def test_dirty_bits_cleared_after_send(self, g):
        pg = partition(g, "cvc", 4, cache=False)
        comm = GluonComm(pg, [DIST], CommConfig(update_only=True))
        labels = fresh_labels(pg)
        p = pg.parts[0]
        writable = np.flatnonzero(~p.is_master & p.has_in_edges())
        if len(writable) == 0:
            pytest.skip("no writable mirrors")
        labels[0][writable[0]] = 1
        comm.mark_updated("dist", 0, [writable[0]])
        comm.make_reduce_messages("dist", 0, labels)
        assert not comm.make_reduce_messages("dist", 0, labels)


class TestAccumulators:
    def test_add_reduce_sums_contributions(self):
        g = rmat(10, edge_factor=8, seed=4)
        pg = partition(g, "cvc", 8, cache=False)
        resid = FieldSpec(name="r", dtype=np.float32, reduce_op="add",
                          read_at="none", write_at="dst", identity=0.0,
                          reset_after_reduce=True)
        comm = GluonComm(pg, [resid])
        labels = fresh_labels(pg, value=0.0, dtype=np.float32)
        # every writable proxy of some vertex adds 1
        gid = None
        for v in range(g.num_vertices):
            holders = [
                p for p in pg.parts
                if p.global_to_local[v] >= 0
                and not p.is_master[p.global_to_local[v]]
                and p.has_in_edges()[p.global_to_local[v]]
            ]
            if len(holders) >= 2:
                gid = v
                break
        if gid is None:
            pytest.skip("no multiply-mirrored writable vertex")
        for p in holders:
            l = p.global_to_local[gid]
            labels[p.pid][l] += 1.0
            comm.mark_updated("r", p.pid, [l])
        owner = int(pg.vertex_owner[gid])
        before = labels[owner][pg.parts[owner].global_to_local[gid]]
        comm.bsp_sync("r", labels)
        after = labels[owner][pg.parts[owner].global_to_local[gid]]
        assert after - before == pytest.approx(len(holders))

    def test_accumulator_reset_after_send(self, g):
        pg = partition(g, "cvc", 4, cache=False)
        resid = FieldSpec(name="r", dtype=np.float32, reduce_op="add",
                          read_at="none", write_at="dst", identity=0.0,
                          reset_after_reduce=True)
        comm = GluonComm(pg, [resid])
        labels = fresh_labels(pg, value=0.0, dtype=np.float32)
        p = pg.parts[0]
        writable = np.flatnonzero(~p.is_master & p.has_in_edges())
        if len(writable) == 0:
            pytest.skip("no writable mirrors")
        l = int(writable[0])
        labels[0][l] = 5.0
        comm.mark_updated("r", 0, [l])
        comm.make_reduce_messages("r", 0, labels)
        assert labels[0][l] == 0.0  # reset to identity, not re-sent


class TestMemoization:
    def test_explicit_ids_present_when_not_memoized(self, g):
        pg = partition(g, "iec", 4, cache=False)
        comm = GluonComm(
            pg, [DIST],
            CommConfig(update_only=False, memoize_addresses=False),
        )
        labels = fresh_labels(pg)
        msgs, _ = comm.bsp_sync("dist", labels)
        assert msgs and all(m.explicit_ids is not None for m in msgs)

    def test_memoized_messages_have_no_ids(self, g):
        pg = partition(g, "iec", 4, cache=False)
        comm = GluonComm(pg, [DIST], CommConfig(update_only=False))
        labels = fresh_labels(pg)
        msgs, _ = comm.bsp_sync("dist", labels)
        assert msgs and all(m.explicit_ids is None for m in msgs)
