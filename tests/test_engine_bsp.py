"""Behavioral tests for the BSP engine: timing, stats, memory enforcement."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.comm import CommConfig
from repro.engine import BSPEngine, RunContext
from repro.errors import ConvergenceError, SimulatedOOMError
from repro.hw import bridges, tuxedo
from repro.hw.memory import LUX_PROFILE
from repro.partition import partition


def engine(small_graph, policy="cvc", parts=8, scale=1.0, **kw):
    pg = partition(small_graph, policy, parts)
    return BSPEngine(
        pg, bridges(parts), get_app("bfs"), scale_factor=scale, **kw
    )


class TestStats:
    def test_breakdown_sums_to_execution_time(self, small_graph, ctx):
        res = engine(small_graph, check_memory=False).run(ctx)
        s = res.stats
        assert s.execution_time > 0
        assert s.max_compute > 0
        assert s.device_comm >= 0
        total = s.max_compute + s.min_wait + s.device_comm
        assert total == pytest.approx(s.execution_time, rel=1e-6)

    def test_comm_volume_positive(self, small_graph, ctx):
        res = engine(small_graph, check_memory=False).run(ctx)
        assert res.stats.comm_volume_bytes > 0
        assert res.stats.num_messages > 0

    def test_rounds_recorded(self, small_graph, ctx):
        res = engine(small_graph, check_memory=False).run(ctx)
        assert res.stats.rounds >= 2
        assert res.stats.local_rounds_min == res.stats.rounds

    def test_work_items_at_least_edges_reachable(self, small_graph, ctx):
        res = engine(small_graph, check_memory=False).run(ctx)
        assert res.stats.work_items > 0

    def test_replication_factor_copied(self, small_graph, ctx):
        res = engine(small_graph, check_memory=False).run(ctx)
        assert res.stats.replication_factor >= 1.0

    def test_memory_recorded(self, small_graph, ctx):
        res = engine(small_graph, check_memory=True).run(ctx)
        assert res.stats.memory_max_bytes > 0
        assert res.stats.memory_balance >= 1.0

    def test_dynamic_balance(self, small_graph, ctx):
        res = engine(small_graph, check_memory=False).run(ctx)
        assert res.stats.dynamic_balance >= 1.0


class TestScaleFactor:
    def test_times_scale_with_factor(self, small_graph, ctx):
        t1 = engine(small_graph, scale=1.0, check_memory=False).run(ctx)
        t2 = engine(small_graph, scale=1000.0, check_memory=False).run(ctx)
        assert t2.stats.execution_time > 20 * t1.stats.execution_time
        assert t2.stats.comm_volume_bytes > 500 * t1.stats.comm_volume_bytes

    def test_answers_unaffected_by_scale(self, small_graph, ctx):
        t1 = engine(small_graph, scale=1.0, check_memory=False).run(ctx)
        t2 = engine(small_graph, scale=1e6, check_memory=False).run(ctx)
        assert np.array_equal(t1.labels, t2.labels)


class TestMemoryEnforcement:
    def test_oom_at_paper_scale(self, small_graph, ctx):
        # a scale factor blowing each partition past 16 GB must OOM
        with pytest.raises(SimulatedOOMError):
            engine(small_graph, scale=1e7, check_memory=True).run(ctx)

    def test_lux_profile_ooms_earlier(self, small_graph, ctx):
        # Lux's static pool is ~5.85 GB: a scale that fits D-IrGL kills Lux
        scale = 1.05e6
        engine(small_graph, scale=scale, check_memory=True).run(ctx)  # fits
        with pytest.raises(SimulatedOOMError):
            engine(
                small_graph, scale=scale, check_memory=True,
                memory_profile=LUX_PROFILE,
            ).run(ctx)


class TestCommConfigEffects:
    def test_uo_reduces_volume_vs_as(self, small_graph, ctx):
        uo = engine(small_graph, check_memory=False,
                    comm_config=CommConfig(update_only=True)).run(ctx)
        asr = engine(small_graph, check_memory=False,
                     comm_config=CommConfig(update_only=False)).run(ctx)
        assert uo.stats.comm_volume_bytes < asr.stats.comm_volume_bytes

    def test_explicit_ids_increase_volume(self, small_graph, ctx):
        memo = engine(small_graph, check_memory=False,
                      comm_config=CommConfig(update_only=False)).run(ctx)
        raw = engine(
            small_graph, check_memory=False,
            comm_config=CommConfig(update_only=False, memoize_addresses=False),
        ).run(ctx)
        assert raw.stats.comm_volume_bytes > memo.stats.comm_volume_bytes


class TestTermination:
    def test_non_convergence_raises(self, small_graph, ctx):
        import dataclasses

        tiny_ctx = dataclasses.replace(ctx, max_rounds=1)
        with pytest.raises(ConvergenceError):
            engine(small_graph, check_memory=False).run(tiny_ctx)

    def test_unreachable_source_converges_fast(self, small_graph, ctx):
        import dataclasses

        # a vertex with no out-edges: bfs ends after one round
        sink = int(np.flatnonzero(small_graph.out_degrees() == 0)[0])
        c2 = dataclasses.replace(ctx, source=sink)
        res = engine(small_graph, check_memory=False).run(c2)
        assert res.stats.rounds <= 2
        assert (res.labels == 0).sum() == 1


class TestHeterogeneousCluster:
    def test_tuxedo_runs(self, small_graph, ctx):
        pg = partition(small_graph, "oec", 6)
        res = BSPEngine(
            pg, tuxedo(6), get_app("bfs"), check_memory=False
        ).run(ctx)
        from repro.validation import reference_bfs

        assert np.array_equal(res.labels, reference_bfs(small_graph, ctx.source))
