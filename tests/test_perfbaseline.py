"""Units for the perf-baseline persistence and comparison logic.

The regression harness's verdicts must themselves be trustworthy: exact
metrics flag any change, simulated floats get a tight relative tolerance,
wall-clock gets a loose slack factor (or is skipped), and schema drift is
rejected loudly instead of diffing garbage.
"""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.metrics.perfbaseline import (
    CellResult,
    compare_to_baseline,
    load_baseline,
    matrix_keys,
    write_baseline,
)


def _cell(key="pr/cvc/bsp/uo", **over):
    base = dict(
        key=key, wall_seconds=0.05, sim_seconds=0.014, rounds=54,
        messages=429, comm_bytes=3.4e5, work_items=1.2e6, labels_crc=12345,
    )
    base.update(over)
    return CellResult(**base)


def test_matrix_keys_cover_full_grid():
    keys = matrix_keys()
    assert len(keys) == len(set(keys)) == 3 * 2 * 2 * 2
    assert "pr/cvc/bsp/uo" in keys


def test_identical_runs_pass():
    cur = {"a": _cell("a"), "b": _cell("b")}
    base = {"a": _cell("a"), "b": _cell("b")}
    assert compare_to_baseline(cur, base, wall_tolerance=2.0) == []


def test_missing_and_extra_cells_flagged():
    violations = compare_to_baseline(
        {"a": _cell("a")}, {"b": _cell("b")}, wall_tolerance=None
    )
    assert any("b" in v and "missing" in v for v in violations)
    assert any("a" in v and "not in baseline" in v for v in violations)


@pytest.mark.parametrize("field,value", [
    ("rounds", 55),
    ("messages", 430),
    ("labels_crc", 99999),
])
def test_exact_metric_change_flagged(field, value):
    violations = compare_to_baseline(
        {"a": _cell("a", **{field: value})}, {"a": _cell("a")},
        wall_tolerance=None,
    )
    assert len(violations) == 1 and field in violations[0]


@pytest.mark.parametrize("field", ["sim_seconds", "comm_bytes", "work_items"])
def test_simulated_float_tolerance(field):
    base = {"a": _cell("a")}
    within = {"a": _cell("a")}
    setattr(within["a"], field, getattr(base["a"], field) * (1 + 1e-9))
    assert compare_to_baseline(within, base, wall_tolerance=None) == []
    drifted = {"a": _cell("a")}
    setattr(drifted["a"], field, getattr(base["a"], field) * 1.01)
    violations = compare_to_baseline(drifted, base, wall_tolerance=None)
    assert len(violations) == 1 and field in violations[0]


def test_wall_clock_slack_and_skip():
    base = {"a": _cell("a", wall_seconds=0.1)}
    slow = {"a": _cell("a", wall_seconds=0.9)}
    violations = compare_to_baseline(slow, base, wall_tolerance=4.0)
    assert len(violations) == 1 and "wall-clock" in violations[0]
    # within slack, and skipped entirely with None
    assert compare_to_baseline(slow, base, wall_tolerance=10.0) == []
    assert compare_to_baseline(slow, base, wall_tolerance=None) == []
    # wall-clock *improvement* never flags
    fast = {"a": _cell("a", wall_seconds=0.001)}
    assert compare_to_baseline(fast, base, wall_tolerance=4.0) == []


def test_write_load_round_trip(tmp_path):
    path = tmp_path / "BENCH_sync.json"
    results = {"a": _cell("a"), "b": _cell("b", rounds=7)}
    write_baseline(path, results, speedup={"speedup": 3.5})
    back = load_baseline(path)
    assert set(back) == {"a", "b"}
    for k in results:
        assert dataclasses.asdict(back[k]) == dataclasses.asdict(results[k])


def test_schema_drift_rejected(tmp_path):
    path = tmp_path / "BENCH_sync.json"
    write_baseline(path, {"a": _cell("a")})
    doc = path.read_text().replace('"schema": 1', '"schema": 99')
    path.write_text(doc)
    with pytest.raises(ConfigurationError):
        load_baseline(path)
