"""Tests for the UO-threshold microbenchmark (Section V-B3)."""

import pytest

from repro.hw import bridges
from repro.study.microbench import (
    uo_crossover_fraction,
    uo_threshold_curve,
)


class TestCurve:
    def test_uo_wins_at_sparse_updates(self):
        pts = uo_threshold_curve(list_len=100_000, volume_scale=100.0)
        assert pts[0].uo_wins  # 0.1% updated

    def test_uo_loses_or_ties_at_full_updates(self):
        pts = uo_threshold_curve(list_len=100_000, volume_scale=100.0)
        full = pts[-1]
        assert full.updated_fraction == 1.0
        # sending everything + a bitset + a scan cannot beat plain AS
        assert full.uo_seconds >= full.as_seconds

    def test_monotone_uo_cost(self):
        pts = uo_threshold_curve(list_len=50_000, volume_scale=10.0)
        costs = [p.uo_seconds for p in pts]
        assert costs == sorted(costs)

    def test_as_cost_constant(self):
        pts = uo_threshold_curve(list_len=50_000, volume_scale=10.0)
        assert len({round(p.as_seconds, 12) for p in pts}) == 1


class TestCrossover:
    def test_crossover_in_unit_interval(self):
        x = uo_crossover_fraction(list_len=100_000, volume_scale=100.0)
        assert 0.0 < x <= 1.0

    def test_larger_lists_raise_crossover(self):
        """Bigger messages amortize the extraction scan: UO stays
        profitable to higher update densities (the paper's friendster vs
        uk07 contrast)."""
        small = uo_crossover_fraction(list_len=2_000, volume_scale=100.0)
        big = uo_crossover_fraction(list_len=500_000, volume_scale=100.0)
        assert big >= small

    def test_same_host_cheaper_transport_lowers_crossover(self):
        # when transport is nearly free, extraction overhead dominates
        # sooner, so the crossover comes earlier on a faster fabric
        from repro.hw import dgx2

        slow = uo_crossover_fraction(
            list_len=100_000, cluster=bridges(4), volume_scale=100.0
        )
        fast = uo_crossover_fraction(
            list_len=100_000, cluster=dgx2(4), volume_scale=100.0
        )
        assert fast <= slow
