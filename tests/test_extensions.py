"""Tests for the extension features: bc, tc, GPUDirect, overlap, DGX-2,
and the telemetry recorder."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import count_triangles, get_app, run_bc
from repro.apps.bc import BrandesBackward, BrandesForward
from repro.apps.tc import reference_triangle_count
from repro.engine import BASPEngine, BSPEngine, RunContext
from repro.errors import ConfigurationError
from repro.generators import rmat
from repro.graph import to_networkx
from repro.graph.transform import add_random_weights, make_undirected
from repro.hw import bridges, dgx2, tuxedo
from repro.metrics import Recorder
from repro.partition import partition
from repro.validation.reference import reference_bc_single_source


@pytest.fixture(scope="module")
def g():
    return add_random_weights(rmat(9, edge_factor=8, seed=3), seed=0)


@pytest.fixture(scope="module")
def bc_ctx(g):
    return RunContext(
        num_global_vertices=g.num_vertices,
        source=int(np.argmax(g.out_degrees())),
        global_out_degrees=g.out_degrees(),
    )


class TestBetweennessCentrality:
    @pytest.mark.parametrize("policy", ["oec", "iec", "hvc", "cvc"])
    def test_matches_reference(self, g, bc_ctx, policy):
        pg = partition(g, policy, 8)
        bc, _ = run_bc(pg, bridges(8), bc_ctx)
        ref = reference_bc_single_source(g, bc_ctx.source)
        assert np.allclose(bc, ref)

    def test_forward_sigma_counts_paths(self, g, bc_ctx):
        pg = partition(g, "cvc", 4)
        res = BSPEngine(
            pg, bridges(4), BrandesForward(), check_memory=False
        ).run(bc_ctx)
        # sigma of the source is 1; unreached vertices have sigma 0
        assert res.labels[bc_ctx.source] == 1.0
        from repro.validation import reference_bfs

        dist = reference_bfs(g, bc_ctx.source)
        assert np.array_equal(res.extra["dist"], dist)
        assert np.all(res.labels[dist == np.iinfo(np.uint32).max] == 0.0)

    def test_backward_requires_payload(self, g, bc_ctx):
        pg = partition(g, "cvc", 4)
        with pytest.raises(ValueError):
            BSPEngine(
                pg, bridges(4), BrandesBackward(), check_memory=False
            ).run(bc_ctx)

    def test_bc_is_bsp_only(self, g, bc_ctx):
        pg = partition(g, "cvc", 4)
        with pytest.raises(ConfigurationError):
            BASPEngine(pg, bridges(4), BrandesForward(), check_memory=False)

    def test_stats_combined(self, g, bc_ctx):
        pg = partition(g, "oec", 4)
        _, stats = run_bc(pg, bridges(4), bc_ctx)
        assert stats.benchmark == "bc"
        assert stats.execution_time > 0


class TestTriangleCounting:
    @pytest.fixture(scope="class")
    def sym(self):
        return make_undirected(rmat(9, edge_factor=6, seed=5))

    def test_reference_matches_networkx(self, sym):
        ref = reference_triangle_count(sym)
        nxg = nx.Graph(to_networkx(sym))
        assert ref == sum(nx.triangles(nxg).values()) // 3

    @pytest.mark.parametrize("policy", ["oec", "cvc", "hvc", "metis-like"])
    def test_distributed_count_exact(self, sym, policy):
        pg = partition(sym, policy, 8)
        cnt, stats = count_triangles(pg, bridges(8), scale_factor=10.0)
        assert cnt == reference_triangle_count(sym)
        assert stats.execution_time > 0
        assert stats.comm_volume_bytes > 0

    def test_triangle_free_graph(self):
        # a star has no triangles
        from repro.graph import from_edges

        star = make_undirected(
            from_edges([0] * 20, range(1, 21), num_vertices=21)
        )
        pg = partition(star, "oec", 4)
        cnt, _ = count_triangles(pg, bridges(4))
        assert cnt == 0


class TestGPUDirectAndOverlap:
    def test_gpudirect_strictly_faster(self, g, bc_ctx):
        pg = partition(g, "cvc", 8)
        base = BSPEngine(
            pg, bridges(8), get_app("sssp"), check_memory=False,
            scale_factor=1000.0,
        ).run(bc_ctx)
        direct = BSPEngine(
            pg, bridges(8, gpudirect=True), get_app("sssp"),
            check_memory=False, scale_factor=1000.0,
        ).run(bc_ctx)
        assert direct.stats.execution_time < base.stats.execution_time
        assert np.array_equal(direct.labels, base.labels)

    def test_overlap_bounds(self, g):
        pg = partition(g, "cvc", 4)
        with pytest.raises(ConfigurationError):
            BSPEngine(pg, bridges(4), get_app("bfs"), overlap_comm=1.5)

    def test_overlap_monotone(self, g, bc_ctx):
        pg = partition(g, "cvc", 8)
        times = []
        for f in (0.0, 0.5, 1.0):
            res = BSPEngine(
                pg, bridges(8), get_app("sssp"), check_memory=False,
                scale_factor=1000.0, overlap_comm=f,
            ).run(bc_ctx)
            times.append(res.stats.execution_time)
        assert times[2] <= times[1] <= times[0]

    def test_dgx2_cluster(self):
        c = dgx2(16)
        assert c.num_gpus == 16
        assert c.num_hosts == 1
        assert c.gpudirect
        with pytest.raises(ConfigurationError):
            dgx2(17)

    def test_dgx2_runs_correctly(self, g, bc_ctx):
        pg = partition(g, "cvc", 16)
        res = BSPEngine(
            pg, dgx2(16), get_app("bfs"), check_memory=False
        ).run(bc_ctx)
        from repro.validation import reference_bfs

        assert np.array_equal(res.labels, reference_bfs(g, bc_ctx.source))


class TestRecorder:
    def test_records_rounds(self, g, bc_ctx):
        pg = partition(g, "cvc", 4)
        rec = Recorder()
        res = BSPEngine(
            pg, bridges(4), get_app("bfs"), check_memory=False, recorder=rec,
        ).run(bc_ctx)
        assert len(rec) == res.stats.rounds

    def test_csv_export(self, g, bc_ctx, tmp_path):
        pg = partition(g, "cvc", 4)
        rec = Recorder()
        BSPEngine(
            pg, bridges(4), get_app("bfs"), check_memory=False, recorder=rec,
        ).run(bc_ctx)
        path = tmp_path / "rounds.csv"
        text = rec.to_csv(path)
        assert path.exists()
        lines = text.strip().splitlines()
        assert lines[0].startswith("round,")
        assert len(lines) == len(rec) + 1

    def test_analyses(self, g, bc_ctx):
        pg = partition(g, "cvc", 4)
        rec = Recorder()
        BSPEngine(
            pg, bridges(4), get_app("bfs"), check_memory=False, recorder=rec,
        ).run(bc_ctx)
        assert rec.average_message_bytes() > 0
        assert 0 <= rec.peak_round() < len(rec)
        profile = rec.work_profile()
        assert profile.sum() > 0
        assert profile[rec.peak_round()] == profile.max()
