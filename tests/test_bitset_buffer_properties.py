"""Property-based tests for the UO bitset and message wire accounting.

The bitset is the dirty-tracking substrate of the UO optimization and the
packed form is its wire format; ``Message.wire_bytes`` is what every
simulated byte count in the study sums.  These invariants back the size
accounting the cost model and the figures rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.bitset import Bitset
from repro.comm.buffers import (
    HEADER_BYTES,
    Message,
    MessageHeader,
    batch_arrays,
)
from repro.constants import GID_BYTES

SETTINGS = settings(max_examples=60, deadline=None)


# --------------------------------------------------------------------------- #
# set / clear / count invariants
# --------------------------------------------------------------------------- #
@st.composite
def _ops(draw):
    size = draw(st.integers(1, 200))
    n_ops = draw(st.integers(0, 40))
    ops = [
        (
            draw(st.sampled_from(["set", "clear"])),
            draw(st.lists(st.integers(0, size - 1), max_size=10)),
        )
        for _ in range(n_ops)
    ]
    return size, ops


@given(s=_ops())
@SETTINGS
def test_bitset_tracks_a_set_model(s):
    size, ops = s
    b = Bitset(size)
    model: set[int] = set()
    for kind, ids in ops:
        if kind == "set":
            if ids:
                b.set(np.asarray(ids))
            model |= set(ids)
        else:
            if ids:
                b.clear(np.asarray(ids))
            model -= set(ids)
        assert b.count() == len(model)
        assert b.any() == bool(model)
        np.testing.assert_array_equal(b.indices(), sorted(model))
        if ids:
            assert b.test(np.asarray(ids)).all() == (kind == "set")
    b.clear()
    assert b.count() == 0 and not b.any()


# --------------------------------------------------------------------------- #
# packed wire form
# --------------------------------------------------------------------------- #
@given(size=st.integers(0, 4096))
@SETTINGS
def test_packed_size_accounting(size):
    assert Bitset.packed_nbytes(size) == (size + 7) // 8
    assert isinstance(Bitset.packed_nbytes(np.int64(size)), int)
    b = Bitset(size)
    assert len(b.to_packed()) == Bitset.packed_nbytes(size)


def test_negative_sizes_rejected():
    with pytest.raises(ValueError):
        Bitset(-1)
    with pytest.raises(ValueError):
        Bitset.packed_nbytes(-8)


@given(
    size=st.integers(0, 600),
    seed=st.integers(0, 2**16),
    fill=st.sampled_from(["random", "empty", "full"]),
)
@SETTINGS
def test_packed_round_trip(size, seed, fill):
    b = Bitset(size)
    if fill == "full":
        b.bits[:] = True
    elif fill == "random":
        b.bits[:] = np.random.default_rng(seed).random(size) < 0.5
    back = Bitset.from_packed(b.to_packed(), size)
    assert back == b
    assert back.count() == b.count()


def test_from_packed_rejects_wrong_length():
    b = Bitset(20)
    packed = b.to_packed()
    with pytest.raises(ValueError):
        Bitset.from_packed(packed[:-1], 20)
    with pytest.raises(ValueError):
        Bitset.from_packed(np.concatenate([packed, [0]]), 20)


def test_from_packed_ignores_padding_bits():
    # the trailing pad bits of the last byte must not leak into the domain
    b = Bitset.from_packed(np.array([0xFF], dtype=np.uint8), 3)
    assert b.count() == 3 and b.size == 3


# --------------------------------------------------------------------------- #
# message wire accounting and batching
# --------------------------------------------------------------------------- #
@st.composite
def _message(draw):
    n = draw(st.integers(0, 50))
    exchange = draw(st.integers(n, 300))
    kind = draw(st.sampled_from(["memoized-full", "memoized-subset", "ids"]))
    values = np.zeros(n, dtype=draw(st.sampled_from([np.uint32, np.float64])))
    positions = None
    ids = None
    if kind == "memoized-subset":
        positions = np.arange(n, dtype=np.int64)
    elif kind == "ids":
        ids = np.arange(n, dtype=np.int64)
    return Message(
        header=MessageHeader(
            src=draw(st.integers(0, 7)), dst=draw(st.integers(0, 7)),
            phase="reduce", field="x",
        ),
        values=values,
        positions=positions,
        exchange_len=exchange,
        explicit_ids=ids,
        scanned_elements=exchange if kind == "memoized-subset" else 0,
    ), kind


@given(m=_message())
@SETTINGS
def test_wire_bytes_decomposition(m):
    msg, kind = m
    expected = HEADER_BYTES + msg.values.nbytes
    if kind == "memoized-subset":
        expected += Bitset.packed_nbytes(msg.exchange_len)
    elif kind == "ids":
        expected += msg.num_elements * GID_BYTES
    got = msg.wire_bytes()
    assert got == expected
    assert isinstance(got, int)


@given(ms=st.lists(_message(), max_size=12))
@SETTINGS
def test_batch_arrays_matches_per_message_scalars(ms):
    msgs = [m for m, _ in ms]
    batch = batch_arrays(msgs)
    assert len(batch.src) == len(msgs)
    for i, msg in enumerate(msgs):
        assert batch.src[i] == msg.header.src
        assert batch.dst[i] == msg.header.dst
        assert batch.wire_bytes[i] == msg.wire_bytes()
        assert batch.num_elements[i] == msg.num_elements
        assert batch.scanned_elements[i] == msg.scanned_elements
