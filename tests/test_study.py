"""Tests for the study drivers: reports, variants, scaling, tables, figures.

The full-fidelity drivers run for minutes; these tests exercise each driver
on reduced sweeps (small datasets / few GPU counts) and check structure,
missing-point semantics, and formatting.
"""

import pytest

from repro.errors import ConfigurationError
from repro.frameworks import DIrGL
from repro.generators import load_dataset
from repro.study import (
    figure3,
    figure5,
    figure8,
    format_series,
    format_table,
    make_variant,
    strong_scaling,
    table1,
    table2,
    table3,
    table4,
)
from repro.study.cli import main as cli_main


class TestReport:
    def test_format_table_basic(self):
        out = format_table(["a", "b"], [[1, 2.5], [3, None]], title="T")
        assert "T" in out
        assert "—" in out  # missing point
        assert "2.500" in out

    def test_format_series(self):
        out = format_series("GPUs", [2, 4], {"x": [1.0, None]}, title="S")
        assert "S" in out and "GPUs" in out and "—" in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestVariants:
    def test_all_variants_instantiate(self):
        for name in ("lux", "var1", "var2", "var3", "var4"):
            fw = make_variant(name)
            assert fw is not None

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            make_variant("var9")

    def test_variants_differ(self):
        v1, v4 = make_variant("var1"), make_variant("var4")
        assert v1.load_balancer != v4.load_balancer
        assert v1.comm_config.update_only != v4.comm_config.update_only
        assert v1.execution != v4.execution


class TestStrongScaling:
    def test_sweep_structure(self):
        ds = load_dataset("tiny-s")
        res = strong_scaling(
            {"cvc": lambda: DIrGL(policy="cvc", execution="sync")},
            "bfs", ds, gpu_counts=(2, 4), check_memory=False,
        )
        assert res.gpu_counts == (2, 4)
        assert len(res.times("cvc")) == 2
        assert all(t is not None for t in res.times("cvc"))

    def test_unsupported_recorded_as_missing(self):
        from repro.frameworks import Lux

        ds = load_dataset("tiny-s")
        res = strong_scaling(
            {"lux": Lux}, "bfs", ds, gpu_counts=(2,),
        )
        assert res.times("lux") == [None]
        assert "unsupported" in res.points["lux"][0].failure

    def test_best_system_at(self):
        ds = load_dataset("tiny-s")
        res = strong_scaling(
            {
                "a": lambda: DIrGL(policy="cvc", execution="sync"),
                "b": lambda: DIrGL(policy="iec", execution="sync"),
            },
            "bfs", ds, gpu_counts=(4,), check_memory=False,
        )
        assert res.best_system_at(4) in ("a", "b")


class TestTables:
    def test_table1_structure(self):
        rows, text = table1(names=["rmat23-s"], diameter_sweeps=1)
        assert len(rows) == 1
        assert "Table I" in text
        assert rows[0][0] == "rmat23-s"

    def test_table2_reduced(self):
        cells, text = table2(
            benchmarks=("bfs",), datasets=("rmat23-s",), gpu_counts=(2,)
        )
        assert ("bfs", "d-irgl", "rmat23-s") in cells
        assert cells[("bfs", "d-irgl", "rmat23-s")].time is not None
        # Lux lacks bfs -> missing cell
        assert cells[("bfs", "lux", "rmat23-s")].time is None
        assert "Table II" in text

    def test_table3_shape_holds(self):
        cells, text = table3(datasets=("rmat23-s",))
        dirgl = cells[("d-irgl", "rmat23-s")]
        gunrock = cells[("gunrock", "rmat23-s")]
        lux = cells[("lux", "rmat23-s")]
        assert dirgl < gunrock
        assert lux == pytest.approx(5.85, abs=0.01)
        assert "Table III" in text

    def test_table4_reduced(self):
        cells, text = table4(
            configs=(("rmat23-s", 4),), benchmarks=("bfs",),
            policies=("cvc", "oec"),
        )
        static, dyn, mem = cells[("bfs", "cvc", "rmat23-s")]
        assert static >= 1.0 and dyn >= 1.0 and mem >= 1.0
        assert "Table IV" in text


class TestFigures:
    def test_figure3_reduced(self):
        results, text = figure3(
            benchmarks=("bfs",), datasets=("twitter50-s",),
            gpu_counts=(4, 8), systems=("var3", "var4"),
        )
        sweep = results[("twitter50-s", "bfs")]
        assert set(sweep.points) == {"var3", "var4"}
        assert "Figure 3" in text

    def test_figure5_reduced(self):
        bars, text = figure5(benchmarks=("cc",), datasets=("twitter50-s",))
        lux = bars[("twitter50-s", "cc", "lux")]
        dirgl = bars[("twitter50-s", "cc", "d-irgl(var1)")]
        assert dirgl is not None
        if lux is not None:  # Lux may OOM depending on calibration
            assert dirgl.total <= lux.total
        assert "Figure 5" in text

    def test_figure8_reduced(self):
        bars, text = figure8(
            benchmarks=("bfs",), datasets=("twitter50-s",), num_gpus=8,
            policies=("cvc", "iec"),
        )
        assert bars[("twitter50-s", "bfs", "CVC")] is not None
        assert "Figure 8" in text

    def test_breakdown_bar_fields(self):
        bars, _ = figure8(
            benchmarks=("bfs",), datasets=("twitter50-s",), num_gpus=8,
            policies=("cvc",),
        )
        bar = bars[("twitter50-s", "bfs", "CVC")]
        assert bar.total == pytest.approx(
            bar.max_compute + bar.min_wait + bar.device_comm
        )
        assert bar.comm_volume_gb > 0


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig9" in out

    def test_table1_quick(self, capsys):
        assert cli_main(["table1", "--quick"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            cli_main(["table17"])


class TestCLIExtras:
    def test_microbench_command(self, capsys):
        assert cli_main(["microbench", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "UO" in out and "AS" in out

    def test_analysis_command(self, capsys):
        assert cli_main(["analysis", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "avg message" in out
        assert "Partition structure" in out
