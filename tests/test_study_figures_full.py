"""Coverage for the figure drivers not exercised in test_study: 4, 6, 7, 9.

All on heavily reduced sweeps — the benches run the representative grids;
these tests check driver structure, missing-point handling, and labeling.
"""

import pytest

from repro.study import figure4, figure6, figure7, figure9


class TestFigure4:
    def test_reduced(self):
        bars, text = figure4(
            benchmarks=("bfs",), datasets=("twitter50-s",), num_gpus=8,
            systems=("var1", "var3"),
        )
        assert bars[("twitter50-s", "bfs", "var1")] is not None
        assert bars[("twitter50-s", "bfs", "var3")] is not None
        assert "Figure 4" in text

    def test_uo_cuts_volume(self):
        bars, _ = figure4(
            benchmarks=("sssp",), datasets=("twitter50-s",), num_gpus=8,
            systems=("var2", "var3"),
        )
        v2 = bars[("twitter50-s", "sssp", "var2")]
        v3 = bars[("twitter50-s", "sssp", "var3")]
        assert v3.comm_volume_gb < v2.comm_volume_gb


class TestFigure6:
    def test_reduced_with_system_subset(self):
        bars, text = figure6(
            benchmarks=("bfs",), datasets=("uk14-s",), num_gpus=64,
            systems=("var1", "var2"),
        )
        assert bars[("uk14-s", "bfs", "var1")] is not None
        assert "Figure 6" in text


class TestFigure7:
    def test_lux_line_included(self):
        results, text = figure7(
            benchmarks=("cc",), datasets=("twitter50-s",),
            gpu_counts=(4,), policies=("cvc",), include_lux=True,
        )
        sweep = results[("twitter50-s", "cc")]
        assert set(sweep.points) == {"CVC", "Lux"}
        assert "Figure 7" in text

    def test_lux_excluded(self):
        results, _ = figure7(
            benchmarks=("cc",), datasets=("twitter50-s",),
            gpu_counts=(4,), policies=("cvc", "iec"), include_lux=False,
        )
        sweep = results[("twitter50-s", "cc")]
        assert set(sweep.points) == {"CVC", "IEC"}


class TestFigure9:
    def test_oom_recorded_as_missing_bar(self):
        bars, text = figure9(
            benchmarks=("cc",), datasets=("uk14-s",), num_gpus=64,
            policies=("iec", "cvc"),
        )
        assert bars[("uk14-s", "cc", "IEC")] is None  # OOM at paper scale
        assert bars[("uk14-s", "cc", "CVC")] is not None
        assert "Figure 9" in text
