"""Qualitative reproduction tests: the paper's findings must hold in shape.

Each test encodes one claim from the paper's abstract/Section V against the
simulator.  These are the "does the reproduction reproduce" tests — slower
than unit tests (medium datasets, up to 64 partitions) but the heart of the
deliverable.
"""

import numpy as np
import pytest

from repro.comm import FieldSpec, GluonComm
from repro.errors import SimulatedOOMError
from repro.frameworks import DIrGL, Lux
from repro.generators import load_dataset
from repro.partition import partition, partition_stats
from repro.study.variants import make_variant


@pytest.fixture(scope="module")
def twitter():
    return load_dataset("twitter50-s")


@pytest.fixture(scope="module")
def uk07():
    return load_dataset("uk07-s")


def run(variant, bench, ds, n, policy="iec"):
    return make_variant(variant, policy).run(bench, ds, n, check_memory=False)


# --------------------------------------------------------------------------- #
# Claim 1 (abstract): CVC is critical to scale out; it wins at >= 16 GPUs
# --------------------------------------------------------------------------- #
class TestCVCWinsAtScale:
    @pytest.mark.parametrize("bench", ["sssp", "cc", "pr", "bfs"])
    def test_cvc_best_on_social_graphs_at_32(self, twitter, bench):
        times = {
            pol: DIrGL(policy=pol, execution="sync")
            .run(bench, twitter, 32, check_memory=False)
            .stats.execution_time
            for pol in ("cvc", "hvc", "iec", "oec")
        }
        assert min(times, key=times.get) == "cvc", times

    def test_edge_cut_competitive_at_2_gpus(self, twitter):
        """The paper's contrast with CPU studies: at small scale edge-cuts
        are fine; the CVC advantage appears as GPUs scale out."""
        t = {
            pol: DIrGL(policy=pol, execution="sync")
            .run("sssp", twitter, 2, check_memory=False)
            .stats.execution_time
            for pol in ("cvc", "iec")
        }
        assert t["iec"] <= t["cvc"] * 1.1

    def test_cvc_gain_grows_with_scale(self, twitter):
        gains = []
        for n in (4, 16, 64):
            cvc = DIrGL(policy="cvc", execution="sync").run(
                "sssp", twitter, n, check_memory=False
            )
            iec = DIrGL(policy="iec", execution="sync").run(
                "sssp", twitter, n, check_memory=False
            )
            gains.append(iec.stats.execution_time / cvc.stats.execution_time)
        assert gains[-1] > gains[0]
        assert gains[-1] > 1.2

    def test_cvc_fewer_communication_partners_at_32(self, twitter):
        dist = FieldSpec(name="dist", dtype=np.uint32, reduce_op="min",
                         read_at="src", write_at="dst")
        p_cvc = partition(twitter.graph, "cvc", 32)
        p_iec = partition(twitter.graph, "iec", 32)
        c_cvc = GluonComm(p_cvc, [dist])
        c_iec = GluonComm(p_iec, [dist])
        max_cvc = max(
            len(c_cvc.reduce_partners("dist", p))
            + len(c_cvc.broadcast_partners("dist", p))
            for p in range(32)
        )
        max_iec = max(
            len(c_iec.reduce_partners("dist", p))
            + len(c_iec.broadcast_partners("dist", p))
            for p in range(32)
        )
        assert max_cvc < max_iec


# --------------------------------------------------------------------------- #
# Claim 2: Var1 outperforms Lux; Lux does not scale
# --------------------------------------------------------------------------- #
class TestLuxVsVar1:
    @pytest.mark.parametrize("bench", ["cc", "pr"])
    def test_var1_beats_lux(self, twitter, bench):
        lux = run("lux", bench, twitter, 4)
        var1 = run("var1", bench, twitter, 4)
        assert var1.stats.execution_time <= lux.stats.execution_time

    def test_lux_volume_larger(self, twitter):
        """No update tracking + explicit global IDs => more bytes."""
        lux = run("lux", "cc", twitter, 4)
        var4 = run("var4", "cc", twitter, 4)
        assert lux.stats.comm_volume_bytes > 2 * var4.stats.comm_volume_bytes


# --------------------------------------------------------------------------- #
# Claim 3: ALB matters exactly for pull-pagerank on huge-in-degree inputs
# --------------------------------------------------------------------------- #
class TestALBvsTWC:
    def test_alb_wins_on_pull_pagerank(self, uk07):
        var1 = run("var1", "pr", uk07, 32)  # TWC
        var2 = run("var2", "pr", uk07, 32)  # ALB
        assert var2.stats.execution_time < 0.7 * var1.stats.execution_time
        assert var2.stats.max_compute < var1.stats.max_compute

    @pytest.mark.parametrize("bench", ["bfs", "sssp", "cc"])
    def test_tied_on_push_benchmarks(self, uk07, bench):
        """Push apps read bounded out-degrees: no thread-block imbalance,
        so Var1 and Var2 perform similarly (Section V-B2)."""
        var1 = run("var1", bench, uk07, 32)
        var2 = run("var2", bench, uk07, 32)
        ratio = var1.stats.execution_time / var2.stats.execution_time
        assert 0.8 < ratio < 1.35, ratio


# --------------------------------------------------------------------------- #
# Claim 4: UO reduces communication volume vs AS
# --------------------------------------------------------------------------- #
class TestUOvsAS:
    @pytest.mark.parametrize("bench", ["bfs", "cc", "kcore", "pr", "sssp"])
    def test_uo_volume_lower(self, uk07, bench):
        var2 = run("var2", bench, uk07, 32)  # AS
        var3 = run("var3", bench, uk07, 32)  # UO
        assert var3.stats.comm_volume_bytes < var2.stats.comm_volume_bytes

    def test_uo_big_win_on_sparse_update_apps(self, uk07):
        var2 = run("var2", "sssp", uk07, 32)
        var3 = run("var3", "sssp", uk07, 32)
        assert var3.stats.comm_volume_bytes < 0.4 * var2.stats.comm_volume_bytes

    def test_uo_pays_extraction_overhead(self, uk07):
        """UO's prefix-scan extraction is visible in device time even when
        volume shrinks (the paper's uk07/sssp latency-bound anecdote)."""
        var3 = run("var3", "sssp", uk07, 32)
        assert var3.stats.device_comm > 0


# --------------------------------------------------------------------------- #
# Claim 5: Async usually helps, but not always
# --------------------------------------------------------------------------- #
class TestSyncVsAsync:
    def test_async_wins_usually(self, twitter, uk07):
        wins = 0
        cases = [("sssp", uk07), ("sssp", twitter), ("cc", twitter)]
        for bench, ds in cases:
            v3 = run("var3", bench, ds, 32)
            v4 = run("var4", bench, ds, 32)
            if v4.stats.execution_time <= v3.stats.execution_time:
                wins += 1
        assert wins >= 2

    def test_async_causes_redundant_work(self):
        """Stale reads on the long-tail crawl inflate local rounds and work
        items (the paper's bfs/uk14 observation)."""
        uk14 = load_dataset("uk14-s")
        v3 = run("var3", "bfs", uk14, 64)
        v4 = run("var4", "bfs", uk14, 64)
        assert v4.stats.work_items > 1.2 * v3.stats.work_items
        assert v4.stats.local_rounds_max > v3.stats.rounds

    def test_async_not_always_better(self, uk07):
        """pr's fine-grained incremental propagation makes BASP's extra
        local rounds a net loss on the crawl — one of the paper's 'in a
        few cases ... worse' instances (theirs was bfs/uk14)."""
        v3 = run("var3", "pr", uk07, 8)
        v4 = run("var4", "pr", uk07, 8)
        assert v4.stats.execution_time > v3.stats.execution_time


# --------------------------------------------------------------------------- #
# Claim 6: static balance ~ memory balance; OOM from static imbalance
# --------------------------------------------------------------------------- #
class TestStaticBalanceAndMemory:
    def test_static_correlates_with_memory(self):
        """Table IV's second takeaway: memory tracks the edge distribution.

        We require close agreement for at least 3 of the 4 policies: IEC on
        the scaled stand-in concentrates a fifth of all vertices as mirrors
        on the authority hub's partition (a small-scale artifact documented
        in EXPERIMENTS.md), which adds vertex-driven memory on top of the
        edge-driven share.
        """
        uk14 = load_dataset("uk14-s")
        close = 0
        for pol in ("cvc", "hvc", "iec", "oec"):
            s = partition_stats(partition(uk14.graph, pol, 64))
            r = DIrGL(policy=pol, execution="sync").run(
                "bfs", uk14, 64, check_memory=False
            )
            if abs(r.stats.memory_balance - s.static_balance) < 0.05:
                close += 1
        assert close >= 3

    def test_static_imbalance_causes_oom_on_large(self):
        """Figure 9's missing bars: a policy whose partitions concentrate
        proxies OOMs on a large graph while balanced policies run the
        identical configuration."""
        uk14 = load_dataset("uk14-s")
        with pytest.raises(SimulatedOOMError):
            DIrGL(policy="iec", execution="sync").run("cc", uk14, 64)
        # CVC runs the same configuration (barely — ~15.6 of 16 GB)
        res = DIrGL(policy="cvc", execution="sync").run("cc", uk14, 64)
        assert res.stats.memory_max_gb < 16

    def test_lux_cannot_run_any_large_graph(self):
        for name in ("clueweb12-s", "uk14-s", "wdc14-s"):
            ds = load_dataset(name)
            with pytest.raises(SimulatedOOMError):
                Lux().run("pr", ds, 64)

    def test_dirgl_runs_every_large_graph(self):
        for name in ("clueweb12-s", "uk14-s", "wdc14-s"):
            ds = load_dataset(name)
            res = DIrGL(policy="cvc", execution="sync").run("bfs", ds, 64)
            assert res.stats.execution_time > 0
